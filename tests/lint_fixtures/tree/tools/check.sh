#!/usr/bin/env bash
# Fixture CI gate: only covered_bench participates in the determinism diff.
set -euo pipefail
build/bench/covered_bench --jobs 1 > j1.txt
build/bench/covered_bench --jobs 8 > j8.txt
diff j1.txt j8.txt
