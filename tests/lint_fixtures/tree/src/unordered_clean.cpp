// Clean counterpart: the unordered map is only sized, never iterated; the
// loop walks an ordered std::map, so no annotation is needed.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct SortedReport {
  std::unordered_map<uint64_t, uint64_t> countsByKey_;
  std::map<uint64_t, uint64_t> orderedCounts_;

  std::vector<uint64_t> orderedKeys() const {
    std::vector<uint64_t> keys;
    keys.reserve(countsByKey_.size());
    for (const auto& kv : orderedCounts_) {
      keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};
