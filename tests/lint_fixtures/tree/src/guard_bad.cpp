// Seeded violations for the `guard-pairing` rule: discarded RAII
// temporaries and protocol opens whose closing half can be skipped.
namespace fixture {

struct Node3 {
  void setBackgroundWork(bool on);
};
struct SpanGuard {
  SpanGuard(const char* name, int tier);
  ~SpanGuard();
};
void beginSpan(const char* name, int tier);
void endSpan(int outcome);
void work();

void discardedGuard() {
  SpanGuard("serve", 1);  // destroyed at the semicolon; guards nothing
  work();
}

void earlyReturnSkipsClose(bool fastPath) {
  beginSpan("serve", 1);
  if (fastPath) {
    return;  // skips endSpan on this path
  }
  work();
  endSpan(0);
}

void backgroundNeverRestored(Node3& node) {
  node.setBackgroundWork(true);
  work();  // foreground QoS never restored
}

struct Ring {
  void drainServer(unsigned long index);
  void addServer(unsigned long index);
};

void drainWithoutRejoin(Ring& ring) {
  ring.drainServer(3);
  work();  // never re-added, never retired
}

}  // namespace fixture
