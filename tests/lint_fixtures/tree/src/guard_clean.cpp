// Clean counterpart for the `guard-pairing` rule: named guards, paired
// halves, and RAII classes whose closing half lives in the destructor.
namespace fixture {

struct Node4 {
  void setBackgroundWork(bool on);
};
struct SpanGuard {
  SpanGuard(const char* name, int tier);
  ~SpanGuard();
};
void beginSpan(const char* name, int tier);
void endSpan(int outcome);
void work2();

void namedGuard() {
  SpanGuard guard("serve", 1);  // bound: closes when the scope ends
  work2();
}

void pairedProtocol(Node4& node) {
  node.setBackgroundWork(true);
  work2();
  node.setBackgroundWork(false);
}

void pairedSpan() {
  beginSpan("serve", 1);
  work2();
  endSpan(0);
}

// RAII wrapper: the open lives in the constructor, the close in the
// destructor — class-level credit pairs them.
class PumpScope {
 public:
  explicit PumpScope(Node4& node) : node_(node) {
    node_.setBackgroundWork(true);
  }
  ~PumpScope() { node_.setBackgroundWork(false); }

 private:
  Node4& node_;
};

struct Ring2 {
  void drainServer(unsigned long index);
  void addServer(unsigned long index);
  void dropShard(unsigned long index);
};

void drainAndRejoin(Ring2& ring) {
  ring.drainServer(3);
  work2();
  ring.addServer(3);
}

void drainAndRetire(Ring2& ring) {
  ring.drainServer(4);
  work2();
  ring.dropShard(4);  // retirement closes the drain window too
}

}  // namespace fixture
