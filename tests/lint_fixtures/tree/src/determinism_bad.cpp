// Seeded violations for the `determinism` rule: every banned entropy and
// wall-clock source, one per function.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int entropySeed() {
  std::random_device rd;
  return static_cast<int>(rd.entropy());
}

int stdEngine() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

long wallClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long wallClockSeed() {
  return time(nullptr);
}

int cRand() {
  return rand();
}
