// Clean counterpart: cost flows through the node's charge() funnel — the
// receiver is a node, not a meter — and cpuMicros is only read.
#include <cstdint>

struct FunnelNode {
  void charge(double micros) { totalMicros_ += micros; }
  double totalMicros_ = 0;
};

void serveThroughFunnel(FunnelNode& node, double micros) {
  node.charge(micros);
}

double doubleSpanCost(double cpuMicros) {
  return cpuMicros * 2.0;
}
