// Seeded violations for the `units` rule: dimension-suffixed identifiers
// mixed across axes without a named conversion.
namespace fixture {

double chargeCpu(double micros) { return micros; }

double mixedAssignment() {
  const double latencyMillis = 3.0;
  double totalMicros = 0.0;
  totalMicros = latencyMillis;  // Micros = Millis
  return totalMicros;
}

double mixedArithmetic(double wireBytes) {
  double sumMicros = 10.0;
  sumMicros += wireBytes;  // Micros += Bytes
  return sumMicros;
}

bool mixedComparison(double payloadBytes, double budgetMicros) {
  return payloadBytes > budgetMicros;  // Bytes > Micros
}

double mixedArgument() {
  const double elapsedMillis = 7.0;
  return chargeCpu(elapsedMillis);  // Millis passed to micros parameter
}

double mixedRate(double opsPerSec, double costDollars) {
  return opsPerSec - costDollars;  // Ops/s - Dollars
}

}  // namespace fixture
