// Seeded hot-path-alloc violations. This relPath is on the rule's
// serve-path whitelist, so each allocation below must be flagged; the
// annotated reserve() pins the allow syntax.
#include <memory>
#include <vector>

namespace fixture {

struct Node {
  int value = 0;
};

class FlatCache {
 public:
  void put(int key) {
    nodes_.push_back(Node{key});
    auto spare = std::make_unique<Node>();
    Node* raw = new Node();
    delete raw;
    spare.reset();
  }

  void grow() {
    // dcache-lint: allow(hot-path-alloc, fixture: amortized growth in whole strides, not per entry)
    nodes_.reserve(nodes_.size() + 1024);
  }

 private:
  std::vector<Node> nodes_;
};

}  // namespace fixture
