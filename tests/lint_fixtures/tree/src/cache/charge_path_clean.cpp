// Clean counterpart for the `charge-path` rule: latency writers that
// reach the funnel, directly or through the call graph.
namespace fixture {

struct Node2 {
  void charge(int component, double micros);
};

double tierWork2() { return 12.5; }

// Direct: the function itself calls the funnel.
double serveBilled(Node2& node) {
  double latencyMicros = tierWork2();
  node.charge(0, latencyMicros);
  return latencyMicros;
}

// Transitive: billTier reaches charge, serveViaHelper reaches billTier.
void billTier(Node2& node, double micros) { node.charge(0, micros); }

double serveViaHelper(Node2& node) {
  double latencyMicros = tierWork2();
  billTier(node, latencyMicros);
  return latencyMicros;
}

}  // namespace fixture
