// Seeded violation for the `charge-path` rule: a serve-surface function
// that computes a latency but never reaches the charge funnel.
namespace fixture {

double tierWork() { return 12.5; }

double serveUnbilled(bool hit) {
  double latencyMicros = 0.0;
  latencyMicros += tierWork();  // cost claimed...
  if (hit) {
    latencyMicros += tierWork();
  }
  return latencyMicros;  // ...but never billed through the funnel
}

}  // namespace fixture
