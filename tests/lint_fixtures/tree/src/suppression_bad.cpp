// Seeded violations for the `suppression` audit: malformed directive,
// unknown rule, missing reason, and a stale allow.
#include <cstdint>

// dcache-lint: allow me to skip this check
uint64_t one() { return 1; }

// dcache-lint: allow(no-such-rule, the rule id is misspelled)
uint64_t two() { return 2; }

// dcache-lint: allow(determinism)
uint64_t three() { return 3; }

// dcache-lint: allow(unordered-iter, nothing here iterates anything)
uint64_t four() { return 4; }
