// Seeded violations for the `race-capture` rule: mutable shared state
// captured by reference into worker-thread lambdas.
namespace fixture {

struct Pool {
  template <typename F> void submit(F f) { f(); }
};
template <typename F>
void mapOrdered(Pool& pool, unsigned long n, F f) {
  for (unsigned long i = 0; i < n; ++i) f(i);
}

void defaultRefCapture(Pool& pool) {
  long total = 0;
  pool.submit([&] { total += 1; });  // [&] default into a worker
}

void unsyncWrite(Pool& pool) {
  long total = 0;
  pool.submit([&total] { total += 1; });  // unguarded by-ref write
}

struct Runner {
  long hits = 0;
  Pool pool;
  void go() {
    pool.submit([this] { hits += 1; });  // raw `this` into a worker
  }
};

}  // namespace fixture
