// Clean counterpart for the `units` rule: same-dimension arithmetic and
// explicit multiplicative conversions do not fire.
namespace fixture {

double chargeCpu2(double micros) { return micros; }

double sameDimension(double startMicros, double endMicros) {
  return endMicros - startMicros;  // Micros - Micros
}

double namedConversion(double latencyMillis) {
  const double latencyMicros = latencyMillis * 1000.0;  // conversion
  return latencyMicros;
}

double rateFromCount(double totalBytes, double windowSeconds) {
  const double bytesPerSec = totalBytes / windowSeconds;  // division
  return bytesPerSec;
}

double sameDimArgument(double elapsedMicros) {
  return chargeCpu2(elapsedMicros);  // Micros to micros parameter
}

}  // namespace fixture
