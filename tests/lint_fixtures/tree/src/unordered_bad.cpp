// Seeded violations for the `unordered-iter` rule: a range-for, an
// iterator sweep, and a range-for through a `using` alias.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

using LoadMap = std::unordered_map<uint64_t, uint64_t>;
using ShardLoad = LoadMap;  // transitive: resolves through LoadMap
typedef std::unordered_set<uint64_t> KeySet;

struct HotSet {
  std::unordered_map<uint64_t, uint64_t> hitsByKey_;
  std::unordered_set<uint64_t> hotKeys_;
  LoadMap loadByShard_;
  ShardLoad spill_;
  KeySet pinned_;

  uint64_t total() const {
    uint64_t sum = 0;
    for (const auto& kv : hitsByKey_) {
      sum += kv.second;
    }
    return sum;
  }

  void expire() {
    for (auto it = hotKeys_.begin(); it != hotKeys_.end();) {
      it = hotKeys_.erase(it);
    }
  }

  uint64_t maxShardLoad() const {
    uint64_t best = 0;
    for (const auto& kv : loadByShard_) {
      if (kv.second > best) best = kv.second;
    }
    return best;
  }

  uint64_t spillTotal() const {
    uint64_t sum = 0;
    for (const auto& kv : spill_) {  // alias-of-alias still unordered
      sum += kv.second;
    }
    return sum;
  }

  uint64_t countPinned() const {
    uint64_t n = 0;
    for (const auto& key : pinned_) {  // typedef spelling
      n += key != 0 ? 1 : 0;
    }
    return n;
  }
};
