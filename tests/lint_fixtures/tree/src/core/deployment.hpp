// Fixture ServeCounters: reads/hits are fully registered; ghostReads is
// deliberately missing from the report adapter and the conservation test.
#pragma once
#include <cstdint>

namespace core {

struct ServeCounters {
  uint64_t reads = 0;
  uint64_t hits = 0;
  uint64_t ghostReads = 0;
};

}  // namespace core
