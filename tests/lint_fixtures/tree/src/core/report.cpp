// Fixture metrics adapter: exports reads and hits (identifier read plus
// snake_case metric key) but never mentions ghostReads.
#include "deployment.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace core {

std::vector<std::pair<std::string, uint64_t>> exportExperimentMetrics(
    const ServeCounters& c) {
  return {
      {"reads", c.reads},
      {"hits", c.hits},
  };
}

}  // namespace core
