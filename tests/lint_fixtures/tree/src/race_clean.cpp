// Clean counterpart for the `race-capture` rule: every sanctioned escape.
#include <atomic>
#include <mutex>
#include <vector>

namespace fixture {

struct Pool2 {
  template <typename F> void submit(F f) { f(); }
};
template <typename F>
void mapOrdered(Pool2& pool, unsigned long n, F f) {
  for (unsigned long i = 0; i < n; ++i) f(i);
}

double cellValue(unsigned long i) { return static_cast<double>(i); }

void atomicCounter(Pool2& pool) {
  std::atomic<long> total{0};
  pool.submit([&total] { total += 1; });  // atomic: synchronized
}

void perCellSlots(Pool2& pool, unsigned long n) {
  std::vector<double> slots(n);
  mapOrdered(pool, n, [&slots](unsigned long i) {
    slots[i] = cellValue(i);  // per-cell subscript writes
  });
}

void lockedWrite(Pool2& pool) {
  std::mutex m;
  long total = 0;
  pool.submit([&total, &m] {
    const std::lock_guard<std::mutex> lock(m);
    total += 1;  // body takes the lock: declared discipline
  });
}

void byValueCopy(Pool2& pool) {
  long seed = 42;
  pool.submit([seed] { cellValue(static_cast<unsigned long>(seed)); });
}

void readOnlyCapture(Pool2& pool) {
  long limit = 10;
  pool.submit([&limit] { cellValue(static_cast<unsigned long>(limit)); });
}

}  // namespace fixture
