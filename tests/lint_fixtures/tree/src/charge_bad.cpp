// Seeded violations for the `charge-funnel` rule: direct meter charges
// (member and parameter receivers) and raw cpuMicros mutation.
#include <cstdint>

struct CpuMeter {
  void charge(double micros) { usedMicros_ += micros; }
  double usedMicros_ = 0;
};

struct Span {
  double cpuMicros = 0;
};

struct RogueNode {
  CpuMeter cpu_;
  Span span_;

  void serveDirect(double micros) {
    cpu_.charge(micros);
    span_.cpuMicros += micros;
  }
};

void chargeParam(CpuMeter& meter, double micros) {
  meter.charge(micros);
}
