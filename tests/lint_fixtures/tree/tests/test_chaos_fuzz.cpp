// Fixture conservation test: compares reads and hits field by field but
// never touches ghostReads.
#include "../src/core/deployment.hpp"

bool countersEqual(const core::ServeCounters& a,
                   const core::ServeCounters& b) {
  return a.reads == b.reads && a.hits == b.hits;
}
