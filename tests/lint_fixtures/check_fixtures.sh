#!/usr/bin/env bash
# Fixture self-test for dcache_lint: run the checker over the seeded
# violation tree (tree/) and assert
#   (a) the exact findings — rule id, file, line, message — against
#       expected.json, and
#   (b) that the JSON report is byte-stable across runs.
#
# Usage: check_fixtures.sh <dcache_lint-binary> <fixture-dir>
set -euo pipefail

LINT="$1"
FIXTURES="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# The tree is deliberately red: expect exit 1 (0 would mean the rules went
# blind; 2 would mean the walker or CLI broke).
status=0
"$LINT" --root "$FIXTURES/tree" --quiet --json "$TMP/run1.json" || status=$?
if [[ "$status" -ne 1 ]]; then
  echo "check_fixtures.sh: expected exit 1 on the seeded tree, got $status" >&2
  exit 1
fi

status=0
"$LINT" --root "$FIXTURES/tree" --quiet --json "$TMP/run2.json" || status=$?
if [[ "$status" -ne 1 ]]; then
  echo "check_fixtures.sh: expected exit 1 on the second run, got $status" >&2
  exit 1
fi

if ! cmp -s "$TMP/run1.json" "$TMP/run2.json"; then
  echo "check_fixtures.sh: JSON report is not byte-stable across runs" >&2
  diff "$TMP/run1.json" "$TMP/run2.json" >&2 || true
  exit 1
fi

if ! diff -u "$FIXTURES/expected.json" "$TMP/run1.json"; then
  echo "check_fixtures.sh: findings diverge from expected.json (above)" >&2
  exit 1
fi

echo "check_fixtures.sh: all seeded violations detected; JSON byte-stable"
