// Fixture for `--fix-suppressions`: two stale directives that the autofix
// must delete (one on its own line, one trailing code), one live directive
// it must keep (it suppresses a real finding), and one unknown-rule
// directive it must leave for a human.
#include <cstdlib>

namespace fixture {

int orderedSum(const int* values, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) sum += values[i];
  return sum;
}

int paddedWidth(int width) {
  int padded = width + 7;
  return padded & ~7;
}

int seededDraw() {
  // dcache-lint: allow(determinism, fixture exercises the used-directive path)
  return std::rand();
}

// dcache-lint: allow(no-such-rule, unknown rules are a mistake, not dead weight)
int untouched() { return 1; }

}  // namespace fixture
