#!/usr/bin/env bash
# Fixture self-test for `dcache_lint --fix-suppressions`: the autofix must
#   (a) find exactly the two stale directives in fix_tree/ on a dry run
#       WITHOUT editing anything,
#   (b) with --apply, rewrite the file to fix_expected/mixed.cpp byte for
#       byte (whole-line directive dropped, trailing directive stripped,
#       used and unknown-rule directives untouched), and
#   (c) report zero stale directives on the tree it just fixed.
#
# Usage: check_fix_suppressions.sh <dcache_lint-binary> <fixture-dir>
set -euo pipefail

LINT="$1"
FIXTURES="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# All runs work on a scratch copy so the checked-in fixture never changes.
cp -r "$FIXTURES/fix_tree" "$TMP/tree"

# (a) Dry run: reports the stale pair, exits 0, leaves the tree untouched.
out="$("$LINT" --fix-suppressions --root "$TMP/tree")"
if ! grep -q "2 stale suppressions found (dry run; --apply to edit)" <<<"$out"; then
  echo "check_fix_suppressions.sh: dry run did not report 2 stale sites:" >&2
  echo "$out" >&2
  exit 1
fi
if ! cmp -s "$TMP/tree/src/mixed.cpp" "$FIXTURES/fix_tree/src/mixed.cpp"; then
  echo "check_fix_suppressions.sh: dry run modified the tree" >&2
  exit 1
fi

# (b) --apply rewrites the file to the pinned result.
out="$("$LINT" --fix-suppressions --apply --root "$TMP/tree")"
if ! grep -q "2 stale suppressions removed" <<<"$out"; then
  echo "check_fix_suppressions.sh: --apply did not report 2 removals:" >&2
  echo "$out" >&2
  exit 1
fi
if ! diff -u "$FIXTURES/fix_expected/mixed.cpp" "$TMP/tree/src/mixed.cpp"; then
  echo "check_fix_suppressions.sh: applied tree diverges from fix_expected (above)" >&2
  exit 1
fi

# (c) The fixed tree is clean: a second pass finds nothing to remove.
out="$("$LINT" --fix-suppressions --root "$TMP/tree")"
if ! grep -q "0 stale suppressions found" <<<"$out"; then
  echo "check_fix_suppressions.sh: fixed tree still reports stale sites:" >&2
  echo "$out" >&2
  exit 1
fi

echo "check_fix_suppressions.sh: stale directives removed; live ones kept"
