// Raft replication cost model tests.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/tier.hpp"
#include "storage/raft.hpp"

namespace dcache::storage {
namespace {

class RaftTest : public ::testing::Test {
 protected:
  RaftTest() : tier_("kv", sim::TierKind::kKvStorage, 5) {}

  sim::NetworkModel network_;
  sim::Tier tier_;
};

TEST_F(RaftTest, FollowersAreRingNeighbours) {
  RaftReplicator raft(tier_, network_, RaftCosts{}, 3);
  EXPECT_EQ(raft.followersOf(0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(raft.followersOf(4), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(raft.replicationFactor(), 3u);
}

TEST_F(RaftTest, ReplicationFactorClampedToTierSize) {
  RaftReplicator raft(tier_, network_, RaftCosts{}, 100);
  EXPECT_EQ(raft.replicationFactor(), 5u);
}

TEST_F(RaftTest, ReplicateChargesLeaderAndFollowers) {
  const RaftCosts costs{};
  RaftReplicator raft(tier_, network_, costs, 3);
  const double latency = raft.replicate(1, 1000);
  EXPECT_GT(latency, 0.0);

  const double leaderExpected =
      costs.leaderAppendMicros + costs.perByteMicros * 1000;
  EXPECT_NEAR(
      tier_.node(1).cpu().micros(sim::CpuComponent::kReplication),
      leaderExpected + 2 * (network_.params().perMessageCpuMicros * 2 +
                            network_.params().perByteCpuMicros * 1016),
      1e-6);
  // Followers 2 and 3 charged; nodes 0 and 4 untouched.
  EXPECT_GT(tier_.node(2).cpu().totalMicros(), 0.0);
  EXPECT_GT(tier_.node(3).cpu().totalMicros(), 0.0);
  EXPECT_DOUBLE_EQ(tier_.node(0).cpu().totalMicros(), 0.0);
  EXPECT_DOUBLE_EQ(tier_.node(4).cpu().totalMicros(), 0.0);
}

TEST_F(RaftTest, IndexesAdvance) {
  RaftReplicator raft(tier_, network_, RaftCosts{}, 3);
  raft.replicate(0, 10);
  raft.replicate(0, 10);
  raft.replicate(3, 10);
  EXPECT_EQ(raft.committedIndex(), 3u);
  // Node 0 applied twice as leader and once as follower of node 3's group
  // (followers of 3 are nodes 4 and 0).
  EXPECT_EQ(raft.appliedIndex(0), 3u);
  EXPECT_EQ(raft.appliedIndex(1), 2u);  // follower of node 0 only
}

TEST_F(RaftTest, LeaseValidationCountsAndCharges) {
  const RaftCosts costs{};
  RaftReplicator raft(tier_, network_, costs, 3);
  raft.validateLease(2);
  raft.validateLease(2);
  EXPECT_EQ(raft.leaseChecks(), 2u);
  EXPECT_DOUBLE_EQ(
      tier_.node(2).cpu().micros(sim::CpuComponent::kLeaseValidation),
      2 * costs.leaseValidateMicros);
}

TEST_F(RaftTest, SingleReplicaHasNoFollowers) {
  RaftReplicator raft(tier_, network_, RaftCosts{}, 1);
  EXPECT_TRUE(raft.followersOf(0).empty());
  const double latency = raft.replicate(0, 100);
  EXPECT_DOUBLE_EQ(latency, 0.0);  // commits locally
}

}  // namespace
}  // namespace dcache::storage
