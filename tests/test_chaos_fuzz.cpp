// Chaos fuzzing: ~50 seeded random combinations of fault schedules
// (crashes, restarts, degraded-network windows, and the gray kinds — slow
// nodes, partial partitions, flaky nodes), overload regimes (finite
// capacities, surging arrival rates, shedding / breakers / hedging /
// deadline budgets toggled at random), randomly armed gray defenses
// (health monitoring, cache replication), and random planned-churn
// schedules (joins, drains, rolling-restart waves, with warm handoff on or
// off) thrown at random architectures. Every combination must uphold the
// simulator's core invariants:
//
//   * counter conservation — ops in equals ops accounted, reads decompose
//     into hit + miss + shed exactly;
//   * CPU conservation — at trace-sample 1 the traced CPU equals the tier
//     meters (every charge flows through the one Node::charge funnel, no
//     matter which defense or failure path spent it);
//   * no negative or impossible meters;
//   * bit-for-bit determinism — the same seed yields the same counters and
//     the same metered total on every run, whether the cells execute on
//     one worker thread or eight (the --jobs contract of every bench).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/deployment.hpp"
#include "core/membership.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

constexpr int kTrials = 50;
constexpr std::uint64_t kWarmupOps = 500;
constexpr std::uint64_t kMeasuredOps = 2500;
constexpr double kQps = 120000.0;

struct ChaosOutcome {
  core::Architecture architecture = core::Architecture::kBase;
  core::ServeCounters counters;
  double meteredTotal = 0.0;
  double tracedTotal = 0.0;
  bool overloadEnabled = false;
  bool shedEnabled = false;
  bool healthEnabled = false;
  bool replicationOn = false;
  bool membershipOn = false;
  bool handoffOn = false;
  std::uint64_t scheduledChurnEvents = 0;
  std::uint64_t workloadKeys = 0;
};

[[nodiscard]] double uniform(util::Pcg32& rng, double lo, double hi) {
  return lo + (hi - lo) * util::uniform01(rng);
}

/// One fully random scenario, deterministic in `seed`. All randomness is
/// drawn up front from the seed's own Pcg32 stream, so a trial replays
/// bit-for-bit regardless of which thread runs it.
ChaosOutcome runChaosTrial(std::uint64_t seed) {
  util::Pcg32 rng(seed, 0xc0ffee);

  constexpr core::Architecture kArchs[] = {
      core::Architecture::kBase, core::Architecture::kRemote,
      core::Architecture::kLinked, core::Architecture::kLinkedVersion,
      core::Architecture::kDisaggregated};
  const core::Architecture arch = kArchs[rng.nextBounded(5)];

  core::DeploymentConfig config;
  config.architecture = arch;
  config.faultSeed = seed * 2654435761u + 17;
  config.trace.sampleEvery = 1;  // full sampling: conservation is exact
  config.trace.seed = seed + 5;

  ChaosOutcome outcome;
  outcome.architecture = arch;
  // Roll the overload regime: about half the trials run with finite
  // capacity, and each defense toggles independently.
  if (rng.nextBounded(2) == 0) {
    // Loose to brutally tight: 4000 µs/s per app node is far below any
    // architecture's steady demand at this pace, so deep saturation,
    // rejection storms and recovery all get exercised across trials.
    config.overload.appCapacityMicrosPerSec = uniform(rng, 4000.0, 400000.0);
    config.overload.maxQueueWaitMicros = uniform(rng, 2000.0, 50000.0);
  }
  if (rng.nextBounded(2) == 0) {
    config.overload.shed.enabled = true;
    config.overload.shed.targetDelayMicros = uniform(rng, 200.0, 3000.0);
    config.overload.shed.graceMicros = uniform(rng, 0.0, 3000.0);
    config.overload.shed.rampMicros = uniform(rng, 500.0, 5000.0);
  }
  if (rng.nextBounded(2) == 0) config.overload.breakersEnabled = true;
  if (rng.nextBounded(2) == 0) config.overload.hedgingEnabled = true;
  if (rng.nextBounded(2) == 0) {
    config.rpcPolicy.deadlineMicros = uniform(rng, 1000.0, 10000.0);
  }
  // Gray-failure defenses toggle independently of the faults, so every
  // combination gets exercised: defenses with nothing to catch, gray
  // faults with no defense, and the full detect-and-route-around loop.
  if (rng.nextBounded(2) == 0) config.health.enabled = true;
  if (rng.nextBounded(2) == 0) config.cacheReplicationFactor = 2;
  outcome.overloadEnabled = config.overload.enabled();
  outcome.shedEnabled = config.overload.shed.enabled;
  outcome.healthEnabled = config.health.enabled;

  core::Deployment deployment(config);
  outcome.replicationOn = deployment.replicationInstalled();
  workload::SyntheticConfig synthetic;
  synthetic.seed = seed + 1000;
  workload::SyntheticWorkload workload{synthetic};
  deployment.populateKv(workload);

  // Random arrival-rate schedule: a handful of phases, each pacing the sim
  // clock at 0.5x..8x the base rate — surges and lulls in one stream.
  std::array<double, 4> multipliers{};
  for (double& m : multipliers) m = uniform(rng, 0.5, 8.0);

  // Random fault schedule over the measured window: up to 2 crash/restart
  // pairs on random tiers plus up to 1 degraded-network window.
  const double horizonMicros =
      static_cast<double>(kWarmupOps + kMeasuredOps) * (1e6 / kQps);
  sim::FaultSchedule faults;
  // Faults aimed at a tier the architecture does not build are no-ops, so
  // every kind is drawable for every arch.
  constexpr sim::TierKind kCrashable[] = {
      sim::TierKind::kAppServer, sim::TierKind::kRemoteCache,
      sim::TierKind::kSqlFrontend, sim::TierKind::kKvStorage,
      sim::TierKind::kFarMemory};
  const std::uint32_t crashes = rng.nextBounded(3);
  for (std::uint32_t i = 0; i < crashes; ++i) {
    const sim::TierKind tier = kCrashable[rng.nextBounded(5)];
    const std::size_t node = rng.nextBounded(3);
    const double down = uniform(rng, 0.0, horizonMicros * 0.8);
    faults.crashNode(static_cast<std::uint64_t>(down), tier, node);
    faults.restartNode(
        static_cast<std::uint64_t>(
            uniform(rng, down, down + horizonMicros * 0.2)),
        tier, node);
  }
  if (rng.nextBounded(2) == 0) {
    const double start = uniform(rng, 0.0, horizonMicros * 0.7);
    faults.degradeNetwork(
        static_cast<std::uint64_t>(start),
        static_cast<std::uint64_t>(
            uniform(rng, start, start + horizonMicros * 0.3)),
        uniform(rng, 1.0, 4.0), uniform(rng, 0.0, 0.05));
  }
  // Gray kinds: up to one slow-node window, one flaky-node window and one
  // asymmetric partition per trial, on random tiers/nodes. Windows may be
  // drawn inverted on purpose — the builders clamp them empty.
  if (rng.nextBounded(2) == 0) {
    const double start = uniform(rng, 0.0, horizonMicros * 0.7);
    faults.slowNode(static_cast<std::uint64_t>(start),
                    static_cast<std::uint64_t>(
                        uniform(rng, start, start + horizonMicros * 0.3)),
                    kCrashable[rng.nextBounded(5)], rng.nextBounded(3),
                    uniform(rng, 1.0, 20.0));
  }
  if (rng.nextBounded(2) == 0) {
    const double start = uniform(rng, 0.0, horizonMicros * 0.7);
    faults.flakyNode(static_cast<std::uint64_t>(start),
                     static_cast<std::uint64_t>(
                         uniform(rng, start, start + horizonMicros * 0.3)),
                     kCrashable[rng.nextBounded(5)], rng.nextBounded(3),
                     uniform(rng, 0.0, 0.6));
  }
  if (rng.nextBounded(2) == 0) {
    const double start = uniform(rng, 0.0, horizonMicros * 0.7);
    const sim::TierKind from = kCrashable[rng.nextBounded(5)];
    const sim::TierKind to = kCrashable[rng.nextBounded(5)];
    faults.partialPartition(
        static_cast<std::uint64_t>(start),
        static_cast<std::uint64_t>(
            uniform(rng, start, start + horizonMicros * 0.3)),
        from, to);
  }
  deployment.installFaultSchedule(std::move(faults));
  outcome.workloadKeys = synthetic.numKeys;

  // Random planned-churn schedule on about half the trials, interleaved
  // with the crash/gray faults above: joins (possibly of already-present
  // nodes — idempotency coverage), drains, and rolling-restart waves on
  // random tiers, replayed warm or cold at random.
  if (rng.nextBounded(2) == 0) {
    outcome.membershipOn = true;
    core::MembershipSchedule schedule;
    constexpr sim::TierKind kChurnable[] = {sim::TierKind::kAppServer,
                                            sim::TierKind::kRemoteCache,
                                            sim::TierKind::kFarMemory};
    const std::uint32_t churnEvents = 1 + rng.nextBounded(3);
    for (std::uint32_t i = 0; i < churnEvents; ++i) {
      const sim::TierKind tier = kChurnable[rng.nextBounded(3)];
      const auto at = static_cast<std::uint64_t>(
          uniform(rng, 0.0, horizonMicros * 0.8));
      switch (rng.nextBounded(3)) {
        case 0:
          schedule.join(at, tier, rng.nextBounded(3));
          outcome.scheduledChurnEvents += 1;
          break;
        case 1:
          schedule.leave(at, tier, rng.nextBounded(3));
          outcome.scheduledChurnEvents += 1;
          break;
        default: {
          const auto step = static_cast<std::uint64_t>(
              uniform(rng, 1000.0, horizonMicros * 0.2));
          schedule.rollingRestart(at, tier, 0, 2, step, step / 2);
          outcome.scheduledChurnEvents += 4;  // 2 leaves + 2 joins
          break;
        }
      }
    }
    core::HandoffConfig handoff;
    handoff.enabled = rng.nextBounded(2) == 0;
    handoff.windowMicros = static_cast<std::uint64_t>(
        uniform(rng, 1000.0, horizonMicros * 0.3));
    handoff.keysPerBatch = 1 + rng.nextBounded(128);
    handoff.batchIntervalMicros = 200 + rng.nextBounded(2000);
    outcome.handoffOn = handoff.enabled;
    deployment.installMembershipSchedule(std::move(schedule), handoff);
  }

  double simMicros = 0.0;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(simMicros));
    const double multiplier =
        multipliers[(opIndex / 700) % multipliers.size()];
    simMicros += 1e6 / (kQps * multiplier);
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < kWarmupOps; ++i) serveOne();
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < kMeasuredOps; ++i) serveOne();

  outcome.counters = deployment.counters();
  for (const sim::Tier* tier : deployment.tiers()) {
    outcome.meteredTotal += tier->aggregateCpu().totalMicros();
  }
  EXPECT_NE(deployment.tracer(), nullptr);
  outcome.tracedTotal = deployment.tracer()->summary().cpuMicrosTotal;
  return outcome;
}

[[nodiscard]] double tolerance(double reference) {
  return 1e-6 * std::max(1.0, reference);
}

/// Field-complete determinism check: every ServeCounters field must replay
/// bit-for-bit. Listing each field here (rather than memcmp) keeps the
/// assertion readable *and* is what the dcache-lint counter-registration
/// rule pins: a new counter that is not added to this conservation test
/// fails the lint lane.
void expectCountersEqual(const core::ServeCounters& a,
                         const core::ServeCounters& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.cacheMisses, b.cacheMisses);
  EXPECT_EQ(a.versionChecks, b.versionChecks);
  EXPECT_EQ(a.versionMismatches, b.versionMismatches);
  EXPECT_EQ(a.statementsIssued, b.statementsIssued);
  EXPECT_EQ(a.ttlExpirations, b.ttlExpirations);
  EXPECT_EQ(a.storageReads, b.storageReads);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.failedCalls, b.failedCalls);
  EXPECT_EQ(a.degradedReads, b.degradedReads);
  EXPECT_EQ(a.coalescedMisses, b.coalescedMisses);
  // Exact double equality: determinism means bit-for-bit, not "close".
  EXPECT_EQ(a.wastedCpuMicros, b.wastedCpuMicros);
  EXPECT_EQ(a.sheddedRequests, b.sheddedRequests);
  EXPECT_EQ(a.queueTimeouts, b.queueTimeouts);
  EXPECT_EQ(a.queueRejections, b.queueRejections);
  EXPECT_EQ(a.breakerOpens, b.breakerOpens);
  EXPECT_EQ(a.breakerShortCircuits, b.breakerShortCircuits);
  EXPECT_EQ(a.hedgesSent, b.hedgesSent);
  EXPECT_EQ(a.hedgeWins, b.hedgeWins);
  EXPECT_EQ(a.budgetExhausted, b.budgetExhausted);
  EXPECT_EQ(a.failedOps, b.failedOps);
  EXPECT_EQ(a.ejectedNodes, b.ejectedNodes);
  EXPECT_EQ(a.replicaFallbackReads, b.replicaFallbackReads);
  EXPECT_EQ(a.staleReplicaReads, b.staleReplicaReads);
  EXPECT_EQ(a.replicaWriteFanout, b.replicaWriteFanout);
  EXPECT_EQ(a.detectionLagMicros, b.detectionLagMicros);
  EXPECT_EQ(a.farMemoryReads, b.farMemoryReads);
  EXPECT_EQ(a.farMemoryBytes, b.farMemoryBytes);
  EXPECT_EQ(a.hotCacheHits, b.hotCacheHits);
  EXPECT_EQ(a.clientInvalidations, b.clientInvalidations);
  EXPECT_EQ(a.plannedJoins, b.plannedJoins);
  EXPECT_EQ(a.plannedLeaves, b.plannedLeaves);
  EXPECT_EQ(a.migratedKeys, b.migratedKeys);
  EXPECT_EQ(a.migratedBytes, b.migratedBytes);
  EXPECT_EQ(a.handoffFallbackReads, b.handoffFallbackReads);
  EXPECT_EQ(a.epochFences, b.epochFences);
}

void checkInvariants(const ChaosOutcome& outcome, std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const core::ServeCounters& c = outcome.counters;

  // Ops in == ops accounted.
  EXPECT_EQ(c.reads + c.writes, kMeasuredOps);

  // Reads decompose exactly: every read either probed a cache (hit or
  // miss) or was shed at admission; Base has no cache, so every non-shed
  // read is exactly one storage round trip.
  if (outcome.architecture == core::Architecture::kBase) {
    EXPECT_EQ(c.cacheHits + c.cacheMisses, 0u);
    EXPECT_EQ(c.storageReads, c.reads - c.sheddedRequests);
  } else {
    EXPECT_EQ(c.cacheHits + c.cacheMisses + c.sheddedRequests, c.reads);
  }
  EXPECT_LE(c.sheddedRequests, c.reads);
  if (!outcome.shedEnabled) EXPECT_EQ(c.sheddedRequests, 0u);

  // Weak conservation bounds on the remaining counters: mismatches are a
  // subset of checks, client-visible failures are a subset of ops, and
  // single-flight coalescing only ever joins read-path misses.
  EXPECT_LE(c.versionMismatches, c.versionChecks);
  EXPECT_LE(c.failedOps, c.reads + c.writes);
  EXPECT_LE(c.coalescedMisses, c.reads);

  // No impossible meters.
  EXPECT_GE(outcome.meteredTotal, 0.0);
  EXPECT_GE(c.wastedCpuMicros, 0.0);
  EXPECT_LE(c.wastedCpuMicros,
            outcome.meteredTotal + tolerance(outcome.meteredTotal));
  EXPECT_LE(c.hedgeWins, c.hedgesSent);
  if (!outcome.overloadEnabled) {
    EXPECT_EQ(c.queueTimeouts + c.queueRejections + c.breakerOpens +
                  c.breakerShortCircuits + c.hedgesSent,
              0u);
  }

  // Gray-failure accounting stays zero unless its defense is armed, and
  // within weak conservation bounds when it is: fallbacks and stale reads
  // are read-path events, ejections carry non-negative detection lag.
  if (!outcome.healthEnabled) {
    EXPECT_EQ(c.ejectedNodes, 0u);
    EXPECT_EQ(c.detectionLagMicros, 0.0);
  }
  if (!outcome.replicationOn) {
    EXPECT_EQ(c.replicaFallbackReads + c.staleReplicaReads +
                  c.replicaWriteFanout,
              0u);
  }
  EXPECT_LE(c.replicaFallbackReads, c.reads);
  EXPECT_LE(c.staleReplicaReads, c.reads);
  EXPECT_GE(c.detectionLagMicros, 0.0);

  // Far-memory accounting exists only under kDisaggregated, and stays
  // within its serve-path bounds when it does: at most one one-sided read
  // per served read, and hot hits are a subset of cache hits.
  if (outcome.architecture != core::Architecture::kDisaggregated) {
    EXPECT_EQ(c.farMemoryReads, 0u);
    EXPECT_EQ(c.farMemoryBytes, 0u);
    EXPECT_EQ(c.hotCacheHits, 0u);
    EXPECT_EQ(c.clientInvalidations, 0u);
  } else {
    EXPECT_LE(c.farMemoryReads, c.reads);
    EXPECT_LE(c.hotCacheHits, c.cacheHits);
  }

  // Membership-churn conservation. No schedule installed means every churn
  // counter is exactly zero; with a schedule but handoff disabled (cold
  // reshard) nothing may migrate and no dual-read may fire. Applied events
  // are bounded by the schedule (the director may *drop* events — e.g. a
  // drain of the last ring member — but never invent them), each migration
  // moves a key the workload inserted (at most once per planned event),
  // and a dual-read fallback rescues at most one read.
  if (!outcome.membershipOn) {
    EXPECT_EQ(c.plannedJoins, 0u);
    EXPECT_EQ(c.plannedLeaves, 0u);
    EXPECT_EQ(c.epochFences, 0u);
  }
  EXPECT_LE(c.plannedJoins + c.plannedLeaves, outcome.scheduledChurnEvents);
  if (!outcome.membershipOn || !outcome.handoffOn) {
    EXPECT_EQ(c.migratedKeys, 0u);
    EXPECT_EQ(c.migratedBytes, 0u);
    EXPECT_EQ(c.handoffFallbackReads, 0u);
  }
  EXPECT_LE(c.handoffFallbackReads, c.reads);
  EXPECT_LE(c.migratedKeys,
            outcome.workloadKeys * (c.plannedJoins + c.plannedLeaves));
  // Synthetic values are fixed-size, so migrated bytes decompose exactly.
  EXPECT_EQ(c.migratedBytes, c.migratedKeys * 4096u);

  // CPU conservation at full sampling: the trace saw every charge the
  // meters saw — shed triage, wasted retry legs, hedge attempts and all.
  EXPECT_NEAR(outcome.tracedTotal, outcome.meteredTotal,
              tolerance(outcome.meteredTotal));
}

TEST(ChaosFuzz, InvariantsHoldAcrossRandomFaultAndOverloadSchedules) {
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(9000 + trial);
    checkInvariants(runChaosTrial(seed), seed);
  }
}

TEST(ChaosFuzz, SameSeedReplaysBitForBit) {
  for (std::uint64_t seed : {9001ull, 9017ull, 9042ull}) {
    const ChaosOutcome a = runChaosTrial(seed);
    const ChaosOutcome b = runChaosTrial(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expectCountersEqual(a.counters, b.counters);
    // Exact double equality: determinism means bit-for-bit, not "close".
    EXPECT_EQ(a.meteredTotal, b.meteredTotal);
    EXPECT_EQ(a.tracedTotal, b.tracedTotal);
  }
}

TEST(ChaosFuzz, ResultsIdenticalAcrossWorkerCounts) {
  // The --jobs contract, at unit scale: mapOrdered over chaos trials must
  // produce identical outcomes on 1 worker and on 8.
  constexpr std::size_t kCells = 8;
  auto runAll = [&](std::size_t jobs) {
    util::ThreadPool pool(jobs);
    auto results = util::mapOrdered(pool, kCells, [](std::size_t i) {
      return runChaosTrial(7000 + static_cast<std::uint64_t>(i));
    });
    pool.wait();
    return results;
  };
  const std::vector<ChaosOutcome> serial = runAll(1);
  const std::vector<ChaosOutcome> parallel = runAll(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expectCountersEqual(serial[i].counters, parallel[i].counters);
    EXPECT_EQ(serial[i].meteredTotal, parallel[i].meteredTotal);
    EXPECT_EQ(serial[i].tracedTotal, parallel[i].tracedTotal);
  }
}

}  // namespace
}  // namespace dcache
