// Eviction policy tests: exact LRU semantics against a reference model,
// policy-specific behaviours (CLOCK second chance, SLRU promotion, FIFO
// recency-blindness, TTL expiry), and a parameterized contract suite run
// over every policy.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "cache/clock.hpp"
#include "cache/fifo.hpp"
#include "cache/kv_cache.hpp"
#include "cache/lru.hpp"
#include "cache/slru.hpp"
#include "cache/ttl.hpp"
#include "util/rng.hpp"

namespace dcache::cache {
namespace {

/// Capacity for `n` unit-sized entries with key "kXX".
[[nodiscard]] util::Bytes capacityFor(std::size_t n) {
  return util::Bytes::of(n * (kEntryOverheadBytes + 3 + 1));
}

[[nodiscard]] std::string key(int i) {
  return "k" + std::to_string(10 + i);  // fixed width 3
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(capacityFor(3));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  cache.put(key(3), CacheEntry::sized(1));
  EXPECT_NE(cache.get(key(1)), nullptr);  // 1 is now MRU
  cache.put(key(4), CacheEntry::sized(1));  // evicts 2
  EXPECT_EQ(cache.peek(key(2)), nullptr);
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(3)), nullptr);
  EXPECT_NE(cache.peek(key(4)), nullptr);
}

TEST(Lru, VictimIsOldest) {
  LruCache cache(capacityFor(10));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  EXPECT_EQ(cache.victim(), key(1));
  EXPECT_NE(cache.get(key(1)), nullptr);
  EXPECT_EQ(cache.victim(), key(2));
}

TEST(Lru, MatchesReferenceModelOnRandomTrace) {
  constexpr std::size_t kCap = 8;
  LruCache cache(capacityFor(kCap));
  std::deque<std::string> model;  // front = MRU
  util::Pcg32 rng(21, 1);

  for (int i = 0; i < 20000; ++i) {
    const std::string k = key(static_cast<int>(rng.nextBounded(30)));
    const bool doGet = rng.nextBounded(2) == 0;
    if (doGet) {
      const bool modelHit =
          std::find(model.begin(), model.end(), k) != model.end();
      const bool cacheHit = cache.get(k) != nullptr;
      ASSERT_EQ(cacheHit, modelHit) << "op " << i;
      if (modelHit) {
        model.erase(std::find(model.begin(), model.end(), k));
        model.push_front(k);
      }
    } else {
      cache.put(k, CacheEntry::sized(1));
      const auto it = std::find(model.begin(), model.end(), k);
      if (it != model.end()) model.erase(it);
      model.push_front(k);
      if (model.size() > kCap) model.pop_back();
    }
    ASSERT_EQ(cache.itemCount(), model.size()) << "op " << i;
  }
}

TEST(Lru, ByteCapacityCountsEntrySizes) {
  LruCache cache(util::Bytes::of(3000));
  cache.put("big1", CacheEntry::sized(1200));
  cache.put("big2", CacheEntry::sized(1200));
  EXPECT_EQ(cache.itemCount(), 2u);
  cache.put("big3", CacheEntry::sized(1200));  // must evict one
  EXPECT_EQ(cache.itemCount(), 2u);
  EXPECT_EQ(cache.peek("big1"), nullptr);  // LRU victim
  EXPECT_LE(cache.bytesUsed().count(), 3000u);
}

TEST(Lru, OversizedEntryNotAdmitted) {
  LruCache cache(util::Bytes::of(500));
  cache.put("huge", CacheEntry::sized(1000));
  EXPECT_EQ(cache.itemCount(), 0u);
  EXPECT_EQ(cache.peek("huge"), nullptr);
}

TEST(Lru, UpdateInPlaceAdjustsBytes) {
  LruCache cache(util::Bytes::of(10000));
  cache.put("k", CacheEntry::sized(100));
  const auto before = cache.bytesUsed();
  cache.put("k", CacheEntry::sized(200));
  EXPECT_EQ(cache.bytesUsed().count(), before.count() + 100);
  EXPECT_EQ(cache.itemCount(), 1u);
}

TEST(Lru, PeekDoesNotAffectRecencyOrStats) {
  LruCache cache(capacityFor(2));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  const auto statsBefore = cache.stats();
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_EQ(cache.stats().hits, statsBefore.hits);
  cache.put(key(3), CacheEntry::sized(1));  // evicts 1 despite the peek
  EXPECT_EQ(cache.peek(key(1)), nullptr);
}

TEST(Fifo, IgnoresRecency) {
  FifoCache cache(capacityFor(3));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  cache.put(key(3), CacheEntry::sized(1));
  // Touch 1 repeatedly; FIFO must still evict it first.
  for (int i = 0; i < 10; ++i) EXPECT_NE(cache.get(key(1)), nullptr);
  cache.put(key(4), CacheEntry::sized(1));
  EXPECT_EQ(cache.peek(key(1)), nullptr);
}

TEST(Fifo, OverwriteKeepsQueuePosition) {
  FifoCache cache(capacityFor(2));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  cache.put(key(1), CacheEntry::sized(1));  // overwrite, still oldest
  cache.put(key(3), CacheEntry::sized(1));
  EXPECT_EQ(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(2)), nullptr);
}

TEST(Clock, SecondChanceSparesReferencedEntries) {
  ClockCache cache(capacityFor(3));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  cache.put(key(3), CacheEntry::sized(1));
  // Reference 1 and 3; insert a new entry: 2 should be the victim.
  EXPECT_NE(cache.get(key(1)), nullptr);
  EXPECT_NE(cache.get(key(3)), nullptr);
  cache.put(key(4), CacheEntry::sized(1));
  EXPECT_EQ(cache.peek(key(2)), nullptr);
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(3)), nullptr);
}

TEST(Clock, SlotReuseAfterErase) {
  ClockCache cache(capacityFor(4));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  EXPECT_TRUE(cache.erase(key(1)));
  EXPECT_FALSE(cache.erase(key(1)));
  cache.put(key(3), CacheEntry::sized(1));  // reuses slot
  EXPECT_EQ(cache.itemCount(), 2u);
  EXPECT_NE(cache.peek(key(3)), nullptr);
}

TEST(Slru, SecondTouchPromotes) {
  SlruCache cache(capacityFor(10), 0.5);
  cache.put(key(1), CacheEntry::sized(1));
  EXPECT_EQ(cache.probationSegment().itemCount(), 1u);
  EXPECT_EQ(cache.protectedSegment().itemCount(), 0u);
  EXPECT_NE(cache.get(key(1)), nullptr);  // promotion
  EXPECT_EQ(cache.probationSegment().itemCount(), 0u);
  EXPECT_EQ(cache.protectedSegment().itemCount(), 1u);
}

TEST(Slru, ScanResistance) {
  // A hot key in protected survives a one-touch scan bigger than probation.
  SlruCache cache(capacityFor(8), 0.5);
  cache.put("hot", CacheEntry::sized(1));
  EXPECT_NE(cache.get("hot"), nullptr);  // promoted
  for (int i = 0; i < 50; ++i) {
    cache.put(key(i), CacheEntry::sized(1));  // scan traffic
  }
  EXPECT_NE(cache.peek("hot"), nullptr);
}

TEST(Ttl, ExpiresAfterDeadline) {
  TtlCache cache(std::make_unique<LruCache>(capacityFor(10)), 1000);
  cache.put("k", CacheEntry::sized(1), /*now=*/0);
  EXPECT_NE(cache.get("k", 500), nullptr);
  EXPECT_EQ(cache.get("k", 1000), nullptr);  // expired exactly at deadline
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.inner().itemCount(), 0u);  // reclaimed
}

TEST(Ttl, PutRefreshesDeadline) {
  TtlCache cache(std::make_unique<LruCache>(capacityFor(10)), 1000);
  cache.put("k", CacheEntry::sized(1), 0);
  cache.put("k", CacheEntry::sized(1), 900);
  EXPECT_NE(cache.get("k", 1500), nullptr);  // deadline moved to 1900
}

TEST(Ttl, SweepReclaimsEagerly) {
  TtlCache cache(std::make_unique<LruCache>(capacityFor(10)), 100);
  cache.put("a", CacheEntry::sized(1), 0);
  cache.put("b", CacheEntry::sized(1), 50);
  cache.put("c", CacheEntry::sized(1), 200);
  EXPECT_EQ(cache.sweep(160), 2u);  // a and b expired
  EXPECT_EQ(cache.inner().itemCount(), 1u);
}

// ---- Regressions: deadlines of inner-policy eviction victims. The TTL
// wrapper never sees the inner policy evict, so it must reconcile its
// deadline map lazily instead of trusting it. ----

TEST(Ttl, InnerEvictionIsNotAnExpiration) {
  // LRU evicts "a" silently; its stale deadline must not surface later as
  // a phantom TTL expiration.
  TtlCache cache(std::make_unique<LruCache>(capacityFor(2)), 1000);
  cache.put(key(1), CacheEntry::sized(1), 0);
  cache.put(key(2), CacheEntry::sized(1), 0);
  cache.put(key(3), CacheEntry::sized(1), 0);  // evicts key(1) inside LRU
  ASSERT_EQ(cache.inner().peek(key(1)), nullptr);
  EXPECT_EQ(cache.get(key(1), 1500), nullptr);  // past the old deadline
  EXPECT_EQ(cache.expirations(), 0u);           // eviction, not expiration
  EXPECT_EQ(cache.trackedDeadlines(), 2u);      // stale entry pruned
}

TEST(Ttl, SweepIgnoresDeadlinesOfEvictedKeys) {
  TtlCache cache(std::make_unique<LruCache>(capacityFor(2)), 100);
  cache.put(key(1), CacheEntry::sized(1), 0);
  cache.put(key(2), CacheEntry::sized(1), 0);
  cache.put(key(3), CacheEntry::sized(1), 0);  // evicts key(1) inside LRU
  // Only the two resident keys count as reclaimed; key(1)'s orphaned
  // deadline is dropped without inflating the expiration stats.
  EXPECT_EQ(cache.sweep(200), 2u);
  EXPECT_EQ(cache.expirations(), 2u);
  EXPECT_EQ(cache.trackedDeadlines(), 0u);
  EXPECT_EQ(cache.inner().itemCount(), 0u);
}

TEST(Ttl, EvictedVictimReinsertGetsFreshDeadline) {
  TtlCache cache(std::make_unique<LruCache>(capacityFor(2)), 1000);
  cache.put(key(1), CacheEntry::sized(1), 0);  // deadline 1000
  cache.put(key(2), CacheEntry::sized(1), 0);
  cache.put(key(3), CacheEntry::sized(1), 0);  // evicts key(1)
  cache.put(key(1), CacheEntry::sized(1), 1500);  // re-insert after eviction
  // The re-inserted entry must live a full TTL (until 2500), not inherit
  // the long-dead deadline from its first life.
  EXPECT_NE(cache.get(key(1), 2400), nullptr);
  EXPECT_EQ(cache.get(key(1), 2500), nullptr);
  EXPECT_EQ(cache.expirations(), 1u);
}

TEST(Ttl, DeadlineMapStaysBounded) {
  // A small inner cache under a large churning keyspace: the deadline map
  // must track the resident set, not every key ever inserted.
  TtlCache cache(std::make_unique<LruCache>(capacityFor(4)), 1'000'000'000);
  for (int i = 0; i < 10000; ++i) {
    cache.put(key(i), CacheEntry::sized(1), static_cast<std::uint64_t>(i));
  }
  EXPECT_LE(cache.trackedDeadlines(), 2 * cache.inner().itemCount() + 64);
}

// ---- Contract suite: every policy must satisfy these. ----

class PolicyContract : public ::testing::TestWithParam<EvictionPolicy> {
 protected:
  [[nodiscard]] std::unique_ptr<KvCache> make(std::size_t items) const {
    return makeCache(GetParam(), capacityFor(items));
  }
};

TEST_P(PolicyContract, GetMissThenHit) {
  auto cache = make(4);
  EXPECT_EQ(cache->get("k10"), nullptr);
  cache->put("k10", CacheEntry::sized(1, 7));
  const CacheEntry* hit = cache->get("k10");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->version, 7u);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
}

TEST_P(PolicyContract, CapacityNeverExceeded) {
  auto cache = make(5);
  util::Pcg32 rng(31, 1);
  for (int i = 0; i < 5000; ++i) {
    cache->put(key(static_cast<int>(rng.nextBounded(50))),
               CacheEntry::sized(1));
    ASSERT_LE(cache->bytesUsed().count(), cache->capacity().count());
  }
}

TEST_P(PolicyContract, EraseRemoves) {
  auto cache = make(4);
  cache->put("k10", CacheEntry::sized(1));
  EXPECT_TRUE(cache->erase("k10"));
  EXPECT_FALSE(cache->erase("k10"));
  EXPECT_EQ(cache->peek("k10"), nullptr);
  EXPECT_EQ(cache->itemCount(), 0u);
}

TEST_P(PolicyContract, ClearEmpties) {
  auto cache = make(4);
  cache->put("a10", CacheEntry::sized(1));
  cache->put("b10", CacheEntry::sized(1));
  cache->clear();
  EXPECT_EQ(cache->itemCount(), 0u);
  EXPECT_EQ(cache->bytesUsed().count(), 0u);
  EXPECT_EQ(cache->peek("a10"), nullptr);
}

TEST_P(PolicyContract, HitRatioReflectsSkew) {
  // A hot key accessed 90% of the time must mostly hit even in a tiny cache.
  auto cache = make(2);
  util::Pcg32 rng(41, 1);
  cache->put("hot", CacheEntry::sized(1));
  for (int i = 0; i < 5000; ++i) {
    if (rng.nextBounded(10) == 0) {
      const std::string k = key(static_cast<int>(rng.nextBounded(100)));
      if (cache->get(k) == nullptr) cache->put(k, CacheEntry::sized(1));
      // Re-touch the hot key so SLRU keeps it protected.
      if (cache->get("hot") == nullptr) cache->put("hot", CacheEntry::sized(1));
    } else {
      if (cache->get("hot") == nullptr) cache->put("hot", CacheEntry::sized(1));
    }
  }
  EXPECT_GT(cache->stats().hitRatio(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContract,
    ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kFifo,
                      EvictionPolicy::kClock, EvictionPolicy::kSlru,
                      EvictionPolicy::kLfu, EvictionPolicy::kS3Fifo),
    [](const auto& info) {
      return std::string(evictionPolicyName(info.param));
    });

}  // namespace
}  // namespace dcache::cache
