// Differential oracle for the disaggregated serve path, in the
// test_cache_differential idiom: a tiny sequential reference model — plain
// maps for the far pool and per-server hot fronts plus an explicit
// invalidation log — runs in lockstep with the real Deployment over seeded
// op streams, and every observable must agree at every step: hit/miss per
// op, the hot/far split, one-sided read counts and the invalidation
// fan-out. The keyspace is sized far below both capacities so eviction
// never fires; what's under test is the serve-path state machine, not the
// eviction policy (test_cache_differential owns that).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace dcache {
namespace {

constexpr std::size_t kAppServers = 3;
constexpr std::uint64_t kKeys = 400;
constexpr std::uint64_t kValueSize = 512;

/// What the reference predicts one op will do to the counters.
struct Prediction {
  bool cacheHit = false;
  bool hotHit = false;
  bool farRead = false;       // a one-sided read was issued
  bool farReadHit = false;    // ... and found the slot populated
  std::uint64_t invalidationsDelivered = 0;
};

/// Sequential reference: models exactly the state the serve path consults —
/// which keys each hot front holds, which keys the far pool holds, and the
/// round-robin app pointer — with none of the cost machinery.
class ReferenceModel {
 public:
  Prediction apply(bool isWrite, std::uint64_t keyIndex) {
    const std::size_t app = rr_++ % kAppServers;
    Prediction p;
    if (isWrite) {
      // Write-through: far slot + writer's own hot copy refresh; every
      // peer's copy is invalidated over the bus (delivered unconditionally,
      // whether or not the peer held the key — the bus can't know).
      far_.insert(keyIndex);
      hot_[app].insert(keyIndex);
      for (std::size_t i = 0; i < kAppServers; ++i) {
        if (i == app) continue;
        hot_[i].erase(keyIndex);
        ++p.invalidationsDelivered;
      }
      log_.push_back(keyIndex);
      return p;
    }
    if (hot_[app].count(keyIndex) != 0) {
      p.cacheHit = p.hotHit = true;
      return p;
    }
    p.farRead = true;  // hot miss always costs one one-sided read
    if (far_.count(keyIndex) != 0) {
      p.cacheHit = p.farReadHit = true;
      hot_[app].insert(keyIndex);
    } else {
      // Miss: storage read fills the far slot and this server's hot front.
      far_.insert(keyIndex);
      hot_[app].insert(keyIndex);
    }
    return p;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& invalidationLog() const {
    return log_;
  }

 private:
  std::size_t rr_ = 0;
  std::set<std::uint64_t> far_;
  std::set<std::uint64_t> hot_[kAppServers];
  std::vector<std::uint64_t> log_;  // keys whose peers were invalidated
};

void runDifferential(std::uint64_t seed, std::size_t ops) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kDisaggregated;
  core::Deployment deployment(config);
  workload::SyntheticConfig synthetic;
  synthetic.numKeys = kKeys;
  synthetic.valueSize = kValueSize;
  workload::SyntheticWorkload workload(synthetic);
  deployment.populateKv(workload);

  ReferenceModel reference;
  util::Pcg32 rng(seed, 31);
  std::uint64_t expectedHits = 0, expectedHotHits = 0, expectedFarReads = 0,
                expectedFarBytes = 0, expectedInvalidations = 0,
                expectedMisses = 0;

  for (std::size_t step = 0; step < ops; ++step) {
    const std::uint64_t keyIndex = rng.next() % kKeys;
    const bool isWrite = rng.next() % 10 == 0;
    const Prediction p = reference.apply(isWrite, keyIndex);

    workload::Op op;
    op.type = isWrite ? workload::OpType::kWrite : workload::OpType::kRead;
    op.keyIndex = keyIndex;
    op.valueSize = kValueSize;
    const auto result = deployment.serve(op);

    if (!isWrite) {
      ASSERT_EQ(result.cacheHit, p.cacheHit) << "step " << step;
    }
    expectedHits += p.cacheHit ? 1 : 0;
    expectedMisses += (!isWrite && !p.cacheHit) ? 1 : 0;
    expectedHotHits += p.hotHit ? 1 : 0;
    expectedFarReads += p.farRead ? 1 : 0;
    if (p.farRead) {
      expectedFarBytes += cache::kFarSlotHeaderBytes;
      if (p.farReadHit) expectedFarBytes += kValueSize;
    }
    expectedInvalidations += p.invalidationsDelivered;

    const core::ServeCounters& c = deployment.counters();
    ASSERT_EQ(c.cacheHits, expectedHits) << "step " << step;
    ASSERT_EQ(c.cacheMisses, expectedMisses) << "step " << step;
    ASSERT_EQ(c.hotCacheHits, expectedHotHits) << "step " << step;
    ASSERT_EQ(c.farMemoryReads, expectedFarReads) << "step " << step;
    ASSERT_EQ(c.farMemoryBytes, expectedFarBytes) << "step " << step;
    ASSERT_EQ(c.clientInvalidations, expectedInvalidations)
        << "step " << step;
  }
  // The bus's own ledger agrees with the explicit invalidation log: one
  // publish per logged write, every one delivered to all peers.
  ASSERT_NE(deployment.invalidationBus(), nullptr);
  EXPECT_EQ(deployment.invalidationBus()->published(),
            reference.invalidationLog().size());
  EXPECT_EQ(deployment.invalidationBus()->delivered(),
            expectedInvalidations);
}

TEST(DisaggDifferential, LockstepAgainstSequentialReference) {
  runDifferential(0x5eed, 6000);
  runDifferential(0xd15a, 6000);
}

TEST(DisaggDifferential, LockstepSurvivesWriteHeavyStream) {
  // Same oracle, write ratio cranked to ~50%: the invalidation fan-out and
  // the re-pull path dominate instead of the hot front.
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kDisaggregated;
  core::Deployment deployment(config);
  workload::SyntheticConfig synthetic;
  synthetic.numKeys = kKeys;
  synthetic.valueSize = kValueSize;
  workload::SyntheticWorkload workload(synthetic);
  deployment.populateKv(workload);

  ReferenceModel reference;
  util::Pcg32 rng(0xabcd, 17);
  std::uint64_t expectedInvalidations = 0;
  for (std::size_t step = 0; step < 6000; ++step) {
    const std::uint64_t keyIndex = rng.next() % kKeys;
    const bool isWrite = rng.next() % 2 == 0;
    const Prediction p = reference.apply(isWrite, keyIndex);
    expectedInvalidations += p.invalidationsDelivered;

    workload::Op op;
    op.type = isWrite ? workload::OpType::kWrite : workload::OpType::kRead;
    op.keyIndex = keyIndex;
    op.valueSize = kValueSize;
    const auto result = deployment.serve(op);
    if (!isWrite) {
      ASSERT_EQ(result.cacheHit, p.cacheHit) << "step " << step;
    }
  }
  EXPECT_EQ(deployment.counters().clientInvalidations,
            expectedInvalidations);
}

}  // namespace
}  // namespace dcache
