// Conservation property for request tracing: every CPU micro the simulator
// charges flows through sim::Node::charge, which feeds both the tier meters
// and (while a sampled request is open) the installed trace sink. So:
//   * at --trace-sample 1 the traced CPU equals the tier meters exactly —
//     per tier and per (tier, component) — including retry legs, timeout
//     losses and degraded reads under fault injection;
//   * at sparser sampling the traced CPU is a subset of the meters, never
//     an overcount.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "core/deployment.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

constexpr std::uint64_t kWarmupOps = 4000;
constexpr std::uint64_t kMeasuredOps = 8000;
constexpr double kMicrosPerOp = 1e6 / 120000.0;

/// Everything a conservation check needs from one traced run.
struct TracedRun {
  obs::TraceSummary trace;
  core::ServeCounters counters;
  std::array<double, obs::kNumTierKinds> meteredByTier{};
  std::array<std::array<double, sim::kNumCpuComponents>, obs::kNumTierKinds>
      meteredByTierComponent{};
  double meteredTotal = 0.0;
};

TracedRun runTraced(core::Architecture arch, std::uint64_t sampleEvery,
                    bool withFaults) {
  core::DeploymentConfig config;
  config.architecture = arch;
  config.trace.sampleEvery = sampleEvery;
  config.trace.seed = 99;
  core::Deployment deployment(config);

  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        kMicrosPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < kWarmupOps; ++i) serveOne();

  if (withFaults) {
    // Crash the cache pod mid-run inside a degraded-network window, so the
    // measured window contains retries, timeouts, wasted legs and degraded
    // reads — the paths most likely to leak charges past the root span.
    const auto at = [](std::uint64_t op) {
      return static_cast<std::uint64_t>(kMicrosPerOp *
                                        static_cast<double>(op));
    };
    sim::FaultSchedule faults;
    faults.crashNode(at(kWarmupOps + kMeasuredOps / 4),
                     sim::TierKind::kRemoteCache, 0);
    faults.restartNode(at(kWarmupOps + 3 * kMeasuredOps / 4),
                       sim::TierKind::kRemoteCache, 0);
    faults.degradeNetwork(at(kWarmupOps + kMeasuredOps / 4),
                          at(kWarmupOps + 3 * kMeasuredOps / 4), 2.0, 0.05);
    deployment.installFaultSchedule(std::move(faults));
  }

  deployment.clearMeters();  // also resets the tracer: same window
  for (std::uint64_t i = 0; i < kMeasuredOps; ++i) serveOne();

  TracedRun run;
  EXPECT_NE(deployment.tracer(), nullptr);
  run.trace = deployment.tracer()->summary();
  run.counters = deployment.counters();
  for (const sim::Tier* tier : deployment.tiers()) {
    const auto kind = static_cast<std::size_t>(tier->kind());
    const sim::CpuMeter cpu = tier->aggregateCpu();
    run.meteredByTier[kind] += cpu.totalMicros();
    run.meteredTotal += cpu.totalMicros();
    for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
      run.meteredByTierComponent[kind][c] +=
          cpu.micros(static_cast<sim::CpuComponent>(c));
    }
  }
  return run;
}

[[nodiscard]] double tolerance(double reference) {
  return 1e-6 * std::max(1.0, reference);
}

class ConservationAllArchitectures
    : public ::testing::TestWithParam<core::Architecture> {};

TEST_P(ConservationAllArchitectures, SampleOneEqualsTierMetersExactly) {
  const TracedRun run = runTraced(GetParam(), /*sampleEvery=*/1,
                                  /*withFaults=*/false);

  ASSERT_EQ(run.trace.sampleEvery, 1u);
  EXPECT_EQ(run.trace.requests, kMeasuredOps);
  EXPECT_EQ(run.trace.sampledRequests, kMeasuredOps);
  EXPECT_GE(run.trace.spanCount, run.trace.sampledRequests);

  EXPECT_GT(run.meteredTotal, 0.0);
  EXPECT_NEAR(run.trace.cpuMicrosTotal, run.meteredTotal,
              tolerance(run.meteredTotal));
  for (std::size_t t = 0; t < obs::kNumTierKinds; ++t) {
    const auto tier = static_cast<sim::TierKind>(t);
    EXPECT_NEAR(run.trace.tierCpuMicros(tier), run.meteredByTier[t],
                tolerance(run.meteredByTier[t]))
        << "tier " << sim::tierKindName(tier);
    for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
      EXPECT_NEAR(run.trace.cpuByTierComponent[t][c],
                  run.meteredByTierComponent[t][c],
                  tolerance(run.meteredByTierComponent[t][c]))
          << "tier " << sim::tierKindName(tier) << " component "
          << sim::cpuComponentName(static_cast<sim::CpuComponent>(c));
    }
  }
}

TEST_P(ConservationAllArchitectures, SparseSamplingNeverOvercounts) {
  const TracedRun run = runTraced(GetParam(), /*sampleEvery=*/7,
                                  /*withFaults=*/false);

  EXPECT_EQ(run.trace.requests, kMeasuredOps);
  EXPECT_GT(run.trace.sampledRequests, 0u);
  EXPECT_LT(run.trace.sampledRequests, run.trace.requests);

  EXPECT_LE(run.trace.cpuMicrosTotal,
            run.meteredTotal + tolerance(run.meteredTotal));
  for (std::size_t t = 0; t < obs::kNumTierKinds; ++t) {
    EXPECT_LE(run.trace.tierCpuMicros(static_cast<sim::TierKind>(t)),
              run.meteredByTier[t] + tolerance(run.meteredByTier[t]))
        << "tier " << sim::tierKindName(static_cast<sim::TierKind>(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ConservationAllArchitectures,
    ::testing::Values(core::Architecture::kBase, core::Architecture::kRemote,
                      core::Architecture::kLinked,
                      core::Architecture::kLinkedVersion,
                      core::Architecture::kDisaggregated),
    [](const ::testing::TestParamInfo<core::Architecture>& info) {
      switch (info.param) {
        case core::Architecture::kBase: return "Base";
        case core::Architecture::kRemote: return "Remote";
        case core::Architecture::kLinked: return "Linked";
        case core::Architecture::kLinkedVersion: return "LinkedVersion";
        case core::Architecture::kDisaggregated: return "Disaggregated";
      }
      return "Unknown";
    });

TEST(ObsConservation, DisaggregatedFarMemoryChargesAreTraced) {
  // The far-memory pool's whole point is near-zero remote CPU, but the
  // charges it does take (slot bookkeeping on one-sided access) plus the
  // client-side per-byte wire handling must still balance at sample 1.
  const TracedRun run = runTraced(core::Architecture::kDisaggregated,
                                  /*sampleEvery=*/1, /*withFaults=*/false);

  ASSERT_GT(run.counters.farMemoryReads, 0u)
      << "workload never reached the far-memory pool";
  EXPECT_GT(run.counters.farMemoryBytes, 0u);
  const auto far = static_cast<std::size_t>(sim::TierKind::kFarMemory);
  EXPECT_GT(run.meteredByTier[far], 0.0);
  EXPECT_NEAR(run.trace.tierCpuMicros(sim::TierKind::kFarMemory),
              run.meteredByTier[far], tolerance(run.meteredByTier[far]));
  // The pool stays near-idle relative to the app tier: the architecture's
  // defining property, checked here so a regression that starts billing
  // full lookups to the pool cannot slip through the equality above.
  const auto app = static_cast<std::size_t>(sim::TierKind::kAppServer);
  EXPECT_LT(run.meteredByTier[far], 0.2 * run.meteredByTier[app]);
}

TEST(ObsConservation, SampleOneEqualityHoldsThroughFaultsAndRetries) {
  // The wasted legs of retried and timed-out calls are charged to real
  // nodes, so they must show up in the trace too — conservation is the
  // whole point of routing the sink through Node::charge.
  const TracedRun run = runTraced(core::Architecture::kRemote,
                                  /*sampleEvery=*/1, /*withFaults=*/true);

  ASSERT_GT(run.counters.degradedReads, 0u)
      << "fault scenario did not exercise the degraded path";
  EXPECT_GT(run.counters.retries + run.counters.timeouts, 0u);
  EXPECT_GT(run.counters.wastedCpuMicros, 0.0);

  EXPECT_NEAR(run.trace.cpuMicrosTotal, run.meteredTotal,
              tolerance(run.meteredTotal));
  for (std::size_t t = 0; t < obs::kNumTierKinds; ++t) {
    EXPECT_NEAR(run.trace.tierCpuMicros(static_cast<sim::TierKind>(t)),
                run.meteredByTier[t], tolerance(run.meteredByTier[t]))
        << "tier " << sim::tierKindName(static_cast<sim::TierKind>(t));
  }
}

TEST(ObsConservation, TracingOffLeavesNoTracerAndMetersUntouched) {
  // DeploymentConfig defaults keep tracing off; the deployment must not
  // even construct a tracer, so the no-flags benches pay nothing.
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment deployment(config);
  EXPECT_EQ(deployment.tracer(), nullptr);

  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);
  for (int i = 0; i < 100; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().reads + deployment.counters().writes, 0u);
}

}  // namespace
}  // namespace dcache
