// Policy-specific behaviour tests for the LFU and S3-FIFO eviction
// policies (the generic contract suite in test_cache_policies.cpp already
// covers both).
#include <gtest/gtest.h>

#include <string>

#include "cache/lfu.hpp"
#include "cache/s3fifo.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace dcache::cache {
namespace {

[[nodiscard]] util::Bytes capacityFor(std::size_t n) {
  return util::Bytes::of(n * (kEntryOverheadBytes + 3 + 1));
}

[[nodiscard]] std::string key(int i) { return "k" + std::to_string(10 + i); }

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache cache(capacityFor(3));
  cache.put(key(1), CacheEntry::sized(1));
  cache.put(key(2), CacheEntry::sized(1));
  cache.put(key(3), CacheEntry::sized(1));
  // Touch 1 three times, 3 once; 2 stays at its insert frequency.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(cache.get(key(1)), nullptr);
  }
  EXPECT_NE(cache.get(key(3)), nullptr);
  cache.put(key(4), CacheEntry::sized(1));  // evicts 2 (lowest frequency)
  EXPECT_EQ(cache.peek(key(2)), nullptr);
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(3)), nullptr);
}

TEST(Lfu, TracksFrequencies) {
  LfuCache cache(capacityFor(4));
  cache.put(key(1), CacheEntry::sized(1));
  EXPECT_EQ(cache.frequencyOf(key(1)), 1u);
  (void)cache.get(key(1));
  (void)cache.get(key(1));
  EXPECT_EQ(cache.frequencyOf(key(1)), 3u);
  EXPECT_EQ(cache.frequencyOf("absent"), 0u);
  // Overwrite also counts as a touch.
  cache.put(key(1), CacheEntry::sized(2));
  EXPECT_EQ(cache.frequencyOf(key(1)), 4u);
}

TEST(Lfu, TieBrokenByRecencyWithinBucket) {
  LfuCache cache(capacityFor(2));
  cache.put(key(1), CacheEntry::sized(1));  // freq 1, older
  cache.put(key(2), CacheEntry::sized(1));  // freq 1, newer
  cache.put(key(3), CacheEntry::sized(1));  // evict LRU of bucket 1 => key 1
  EXPECT_EQ(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(2)), nullptr);
}

TEST(Lfu, FrequentKeySurvivesChurn) {
  LfuCache cache(capacityFor(8));
  cache.put("hot", CacheEntry::sized(1));
  for (int i = 0; i < 20; ++i) (void)cache.get("hot");
  for (int i = 0; i < 500; ++i) {
    cache.put(key(i), CacheEntry::sized(1));  // one-touch churn
  }
  EXPECT_NE(cache.peek("hot"), nullptr);
}

TEST(S3Fifo, OneHitWondersDieInSmallQueue) {
  S3FifoCache cache(capacityFor(20), 0.25);
  // A stream of never-repeated keys must churn through the small queue;
  // none should be promoted to main.
  for (int i = 0; i < 200; ++i) {
    cache.put(key(i), CacheEntry::sized(1));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytesUsed().count(), cache.capacity().count());
}

TEST(S3Fifo, ReReferencedEntriesPromoteToMain) {
  S3FifoCache cache(capacityFor(20), 0.25);
  cache.put("hot", CacheEntry::sized(1));
  EXPECT_NE(cache.get("hot"), nullptr);  // marks the entry referenced
  // Push enough one-touch traffic to flush the small queue repeatedly.
  for (int i = 0; i < 300; ++i) cache.put(key(i), CacheEntry::sized(1));
  EXPECT_NE(cache.peek("hot"), nullptr) << "hot key should live in main";
}

TEST(S3Fifo, GhostQueueReadmitsToMain) {
  S3FifoCache cache(capacityFor(20), 0.25);
  // First pass: the key is evicted from small untouched -> remembered as
  // a ghost. Keep the churn short so the bounded ghost queue (which only
  // remembers recent evictions) still holds it when it returns.
  cache.put("comeback", CacheEntry::sized(1));
  for (int i = 0; i < 25; ++i) cache.put(key(i), CacheEntry::sized(1));
  ASSERT_EQ(cache.peek("comeback"), nullptr);
  EXPECT_GT(cache.ghostSize(), 0u);
  // Its return proves reuse: it must be admitted straight to main and now
  // survive the same kind of churn that killed it before.
  cache.put("comeback", CacheEntry::sized(1));
  for (int i = 100; i < 160; ++i) cache.put(key(i), CacheEntry::sized(1));
  EXPECT_NE(cache.peek("comeback"), nullptr);
}

TEST(S3Fifo, BeatsOrMatchesFifoOnSkewedTrace) {
  constexpr std::size_t kItems = 50;
  S3FifoCache s3(capacityFor(kItems), 0.1);
  // Plain FIFO for comparison, same capacity.
  auto fifo = makeCache(EvictionPolicy::kFifo, capacityFor(kItems));

  workload::ZipfianGenerator zipf(2000, 1.1);
  util::Pcg32 rngA(71, 1);
  util::Pcg32 rngB(71, 1);
  auto run = [](KvCache& cache, workload::ZipfianGenerator& gen,
                util::Pcg32& rng) {
    for (int i = 0; i < 60000; ++i) {
      const std::string k = "z" + std::to_string(gen.nextKey(rng));
      if (cache.get(k) == nullptr) cache.put(k, CacheEntry::sized(1));
    }
    return cache.stats().hitRatio();
  };
  const double s3Hit = run(s3, zipf, rngA);
  const double fifoHit = run(*fifo, zipf, rngB);
  EXPECT_GE(s3Hit, fifoHit - 0.005);  // S3-FIFO's design claim
}

TEST(S3Fifo, EraseFromEitherQueue) {
  S3FifoCache cache(capacityFor(10), 0.3);
  cache.put("small-resident", CacheEntry::sized(1));
  EXPECT_TRUE(cache.erase("small-resident"));
  // Promote one to main, then erase it there.
  cache.put("main-resident", CacheEntry::sized(1));
  (void)cache.get("main-resident");
  for (int i = 0; i < 50; ++i) cache.put(key(i), CacheEntry::sized(1));
  if (cache.peek("main-resident") != nullptr) {
    EXPECT_TRUE(cache.erase("main-resident"));
  }
  EXPECT_FALSE(cache.erase("never-there"));
}

}  // namespace
}  // namespace dcache::cache
