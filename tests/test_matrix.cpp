// Thread pool and experiment matrix tests: pool liveness, ordered mapping,
// per-cell seed derivation, and the core reproducibility guarantee — a
// matrix run is bit-identical whether it runs on 1 worker or 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/matrix.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] workload::SyntheticConfig tinyWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 500;
  config.valueSize = 512;
  return config;
}

[[nodiscard]] DeploymentConfig tinyDeployment() {
  DeploymentConfig config;
  config.appCachePerNode = util::Bytes::mb(16);
  config.remoteCachePerNode = util::Bytes::mb(16);
  config.blockCachePerNode = util::Bytes::mb(16);
  return config;
}

[[nodiscard]] ExperimentConfig tinyExperiment() {
  ExperimentConfig experiment;
  experiment.operations = 2000;
  experiment.warmupOperations = 2000;
  experiment.qps = 2000;
  return experiment;
}

TEST(ThreadPool, RunsEveryTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ResolveJobCount) {
  EXPECT_EQ(util::resolveJobCount(3), 3u);
  EXPECT_EQ(util::resolveJobCount(1), 1u);
  EXPECT_GE(util::resolveJobCount(0), 1u);  // env / hardware fallback
}

TEST(ThreadPool, MapOrderedPreservesSubmissionOrder) {
  util::ThreadPool pool(8);
  const std::vector<std::size_t> out =
      util::mapOrdered(pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, MapOrderedPropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(util::mapOrdered(pool, 16,
                                [](std::size_t i) -> int {
                                  if (i == 7) throw std::runtime_error("boom");
                                  return 0;
                                }),
               std::runtime_error);
}

TEST(Matrix, CellSeedsAreDeterministicAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(cellSeed(42, i), cellSeed(42, i));
    seeds.insert(cellSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across cells
  EXPECT_NE(cellSeed(1, 0), cellSeed(2, 0));
}

TEST(Matrix, ParsesJobsAndSeedFlags) {
  char prog[] = "bench";
  char jobs[] = "--jobs";
  char jobsValue[] = "8";
  char seed[] = "--seed=7";
  char* argv[] = {prog, jobs, jobsValue, seed};
  const MatrixOptions options = parseMatrixOptions(4, argv);
  EXPECT_EQ(options.jobs, 8u);
  EXPECT_EQ(options.rootSeed, 7u);
}

/// The same matrix queued twice; only the worker count differs.
[[nodiscard]] std::vector<ExperimentResult> runMatrix(std::size_t jobs) {
  MatrixOptions options;
  options.jobs = jobs;
  options.rootSeed = 99;
  ExperimentMatrix matrix(options);
  for (const Architecture arch : kAllArchitectures) {
    matrix.add(
        arch,
        [](util::Pcg32&) {
          return std::make_unique<workload::SyntheticWorkload>(tinyWorkload());
        },
        tinyDeployment(), tinyExperiment());
  }
  // Cells that consume their private generator: identical output across
  // worker counts proves seeding depends only on (rootSeed, index).
  for (int c = 0; c < 4; ++c) {
    matrix.add([](util::Pcg32& rng) {
      ExperimentResult result;
      result.architecture = "rng-cell";
      for (int i = 0; i < 100; ++i) {
        result.latencies.record(static_cast<double>(rng.next()));
      }
      result.meanLatencyMicros = result.latencies.mean();
      result.p99LatencyMicros = result.latencies.p99();
      return result;
    });
  }
  return matrix.run();
}

TEST(Matrix, ResultsIdenticalAcrossJobCounts) {
  const std::vector<ExperimentResult> sequential = runMatrix(1);
  const std::vector<ExperimentResult> parallel = runMatrix(8);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const ExperimentResult& a = sequential[i];
    const ExperimentResult& b = parallel[i];
    EXPECT_EQ(a.architecture, b.architecture) << "cell " << i;
    EXPECT_EQ(a.counters.reads, b.counters.reads) << "cell " << i;
    EXPECT_EQ(a.counters.writes, b.counters.writes) << "cell " << i;
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits) << "cell " << i;
    EXPECT_EQ(a.cost.totalCost.dollars(), b.cost.totalCost.dollars())
        << "cell " << i;
    EXPECT_EQ(a.meanLatencyMicros, b.meanLatencyMicros) << "cell " << i;
    EXPECT_EQ(a.p99LatencyMicros, b.p99LatencyMicros) << "cell " << i;
    EXPECT_EQ(a.latencies.count(), b.latencies.count()) << "cell " << i;
  }
}

TEST(Matrix, MergedLatenciesAccumulateEveryCell) {
  const std::vector<ExperimentResult> results = runMatrix(4);
  std::uint64_t total = 0;
  for (const ExperimentResult& result : results) {
    total += result.latencies.count();
  }
  EXPECT_GT(total, 0u);
  const util::Histogram merged = mergedLatencies(results);
  EXPECT_EQ(merged.count(), total);
}

}  // namespace
}  // namespace dcache::core
