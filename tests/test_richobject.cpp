// Rich-object layer tests: catalog population, the getTable assembler
// (query amplification, object correctness, sizes), permission inheritance
// and the object codec.
#include <gtest/gtest.h>

#include <memory>

#include "richobject/assembler.hpp"
#include "richobject/catalog_store.hpp"
#include "richobject/entities.hpp"
#include "richobject/object_codec.hpp"
#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"

namespace dcache::richobject {
namespace {

class RichObjectTest : public ::testing::Test {
 protected:
  RichObjectTest()
      : sqlTier_("sql", sim::TierKind::kSqlFrontend, 1),
        kvTier_("kv", sim::TierKind::kKvStorage, 3),
        app_("app", sim::TierKind::kAppServer),
        channel_(network_, rpc::SerializationModel{}),
        db_(sqlTier_, kvTier_, channel_) {
    workload::UcTraceConfig traceConfig;
    traceConfig.numTables = 200;  // small dataset for unit tests
    trace_ = std::make_unique<workload::UcTraceWorkload>(traceConfig);
    store_ = std::make_unique<CatalogStore>(db_, *trace_);
    store_->createSchemas();
    store_->populate();
    assembler_ = std::make_unique<Assembler>(*store_);
  }

  sim::NetworkModel network_;
  sim::Tier sqlTier_;
  sim::Tier kvTier_;
  sim::Node app_;
  rpc::Channel channel_;
  storage::Database db_;
  std::unique_ptr<workload::UcTraceWorkload> trace_;
  std::unique_ptr<CatalogStore> store_;
  std::unique_ptr<Assembler> assembler_;
};

TEST_F(RichObjectTest, SchemasCreated) {
  for (const char* table : {"tables", "schemas", "catalogs", "principals",
                            "privileges", "constraints", "lineage",
                            "properties"}) {
    EXPECT_NE(db_.schema(table), nullptr) << table;
  }
  // tables carries the declared blob column.
  ASSERT_TRUE(db_.schema("tables")->payloadSizeColumn().has_value());
}

TEST_F(RichObjectTest, HierarchyIdsConsistent) {
  // Table 0 and table 49 share schema 0; table 50 starts schema 1.
  EXPECT_EQ(store_->schemaIdFor(0), store_->schemaIdFor(49));
  EXPECT_NE(store_->schemaIdFor(49), store_->schemaIdFor(50));
  EXPECT_EQ(store_->catalogIdFor(0), 0);
  EXPECT_EQ(store_->catalogIdFor(19), 0);
  EXPECT_EQ(store_->catalogIdFor(20), 1);
}

TEST_F(RichObjectTest, GetTableAssemblesFullObject) {
  const auto result = assembler_->getTable(app_, 0);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.object.table.id, 0);
  EXPECT_EQ(result.object.table.name, "table_0");
  EXPECT_GE(result.statementsIssued, 1u);
  EXPECT_LE(result.statementsIssued, 8u);
  EXPECT_GT(result.bytesRead, 0u);
  EXPECT_GT(result.latencyMicros, 0.0);
  // The budget comes from the trace.
  EXPECT_EQ(result.statementsIssued, trace_->statementsFor(0));
}

TEST_F(RichObjectTest, FullBudgetFetchesParentsAndSatellites) {
  // Find a table whose budget is 8 so everything is fetched.
  std::uint64_t full = 0;
  for (std::uint64_t t = 0; t < 200; ++t) {
    if (trace_->statementsFor(t) == 8) {
      full = t;
      break;
    }
  }
  const auto result = assembler_->getTable(app_, full);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.statementsIssued, 8u);
  EXPECT_EQ(result.object.schema.id, store_->schemaIdFor(full));
  EXPECT_EQ(result.object.catalog.id,
            store_->catalogIdFor(store_->schemaIdFor(full)));
  EXPECT_FALSE(result.object.schema.name.empty());
  EXPECT_GE(result.object.privileges.size(),
            store_->privilegeCount(full));  // + inherited catalog grants
  EXPECT_EQ(result.object.constraints.size(), store_->constraintCount(full));
  EXPECT_EQ(result.object.lineage.size(), store_->lineageCount(full));
  EXPECT_EQ(result.object.properties.size(), store_->propertyCount(full));
}

TEST_F(RichObjectTest, UnknownTableFails) {
  const auto result = assembler_->getTable(app_, 99999);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.statementsIssued, 1u);  // stops after the table lookup
}

TEST_F(RichObjectTest, ObjectSizeTracksWorkloadSize) {
  // The declared blob is fitted so the object is close to the trace size
  // (slightly above for tables whose structured parts exceed the target).
  for (const std::uint64_t t : {0ULL, 7ULL, 50ULL, 199ULL}) {
    const auto result = assembler_->getTable(app_, t);
    ASSERT_TRUE(result.ok);
    const auto want = trace_->valueSizeFor(t);
    const auto got = result.object.approximateSize();
    EXPECT_GE(got, want / 2) << "table " << t;
    EXPECT_LE(got, want + 4096) << "table " << t;
  }
}

TEST_F(RichObjectTest, QueryAmplificationChargesStoragePerStatement) {
  const double parseBefore =
      sqlTier_.aggregateCpu().micros(sim::CpuComponent::kQueryParse);
  const auto result = assembler_->getTable(app_, 3);
  ASSERT_TRUE(result.ok);
  const double parseAfter =
      sqlTier_.aggregateCpu().micros(sim::CpuComponent::kQueryParse);
  // Each statement pays parse separately — the §5.4 amplification.
  const double perStatement =
      (parseAfter - parseBefore) / static_cast<double>(result.statementsIssued);
  EXPECT_GT(perStatement, 0.0);
  EXPECT_NEAR(parseAfter - parseBefore,
              perStatement * static_cast<double>(result.statementsIssued),
              1e-9);
  // And the app paid request-prep per statement.
  EXPECT_GE(app_.cpu().micros(sim::CpuComponent::kRequestPrep),
            static_cast<double>(result.statementsIssued));
}

TEST_F(RichObjectTest, UpdateTableBumpsVersion) {
  const auto before = db_.peekRowVersion("tables", "5");
  ASSERT_TRUE(before.has_value());
  assembler_->updateTable(app_, 5);
  const auto after = db_.peekRowVersion("tables", "5");
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(*after, *before);

  // And the app-level version column advanced too.
  const auto result = assembler_->getTable(app_, 5);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.object.table.version, 2);
}

TEST_F(RichObjectTest, PermissionInheritance) {
  RichTableObject object;
  object.table.owner = "user1";
  object.schema.owner = "user2";
  object.catalog.owner = "user3";
  object.privileges = {
      Privilege{SecurableLevel::kTable, "alice", "SELECT"},
      Privilege{SecurableLevel::kCatalog, "bob", "MODIFY"},
      Privilege{SecurableLevel::kSchema, "carol", "ALL"},
      Privilege{SecurableLevel::kTable, "dave", "OWN"},
  };
  // Owners anywhere in the chain can do anything.
  EXPECT_TRUE(object.allowed("user1", "MODIFY"));
  EXPECT_TRUE(object.allowed("user2", "SELECT"));
  EXPECT_TRUE(object.allowed("user3", "DELETE"));
  // Exact grant.
  EXPECT_TRUE(object.allowed("alice", "SELECT"));
  EXPECT_FALSE(object.allowed("alice", "MODIFY"));
  // Catalog-level grant inherits downward.
  EXPECT_TRUE(object.allowed("bob", "MODIFY"));
  // ALL and OWN cover everything.
  EXPECT_TRUE(object.allowed("carol", "SELECT"));
  EXPECT_TRUE(object.allowed("dave", "MODIFY"));
  // Strangers denied.
  EXPECT_FALSE(object.allowed("mallory", "SELECT"));
}

TEST_F(RichObjectTest, CodecRoundtrip) {
  const auto result = assembler_->getTable(app_, 11);
  ASSERT_TRUE(result.ok);
  const std::string bytes = encodeObject(result.object);
  const auto back = decodeObject(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->table.id, result.object.table.id);
  EXPECT_EQ(back->table.name, result.object.table.name);
  EXPECT_EQ(back->table.dataBytes, result.object.table.dataBytes);
  EXPECT_EQ(back->schema.name, result.object.schema.name);
  EXPECT_EQ(back->catalog.name, result.object.catalog.name);
  EXPECT_EQ(back->privileges.size(), result.object.privileges.size());
  EXPECT_EQ(back->constraints.size(), result.object.constraints.size());
  EXPECT_EQ(back->lineage.size(), result.object.lineage.size());
  EXPECT_EQ(back->properties, result.object.properties);
}

TEST_F(RichObjectTest, CodecRejectsCorruption) {
  const auto result = assembler_->getTable(app_, 2);
  ASSERT_TRUE(result.ok);
  std::string bytes = encodeObject(result.object);
  int rejected = 0;
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    if (!decodeObject(corrupt).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(RichObjectTest, EncodedSizeIncludesBlob) {
  RichTableObject object;
  object.table.dataBytes = 100000;
  object.table.name = "t";
  EXPECT_GT(encodedObjectSize(object), 100000u);
  // approximateSize tracks the same blob.
  EXPECT_GT(object.approximateSize(), 100000u);
}

TEST_F(RichObjectTest, SecurableNames) {
  EXPECT_EQ(CatalogStore::tableSecurable(5), "tbl5");
  EXPECT_EQ(CatalogStore::schemaSecurable(2), "sch2");
  EXPECT_EQ(CatalogStore::catalogSecurable(0), "cat0");
  EXPECT_EQ(securableLevelName(SecurableLevel::kTable), "table");
}

}  // namespace
}  // namespace dcache::richobject
