// Differential fuzz between the node-based and flat (slab + open-addressing)
// cache backends: both are driven in lockstep over seeded op streams and
// must agree on every observable — hit/miss per get, stats counters, item
// counts, byte accounting and (for LRU/FIFO) the next eviction victim. This
// is the lock that lets the flat backend claim sequence-identity, plus the
// SlruCache constructor-clamp regressions and the accounting-invariant
// death test from the same bugfix sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cache/flat_cache.hpp"
#include "cache/kv_cache.hpp"
#include "cache/lru.hpp"
#include "cache/slru.hpp"
#include "util/rng.hpp"

namespace dcache::cache {
namespace {

void expectSameState(const KvCache& node, const KvCache& flat,
                     std::size_t step) {
  ASSERT_EQ(node.itemCount(), flat.itemCount()) << "step " << step;
  ASSERT_EQ(node.bytesUsed().count(), flat.bytesUsed().count())
      << "step " << step;
  const CacheStats& ns = node.stats();
  const CacheStats& fs = flat.stats();
  ASSERT_EQ(ns.hits, fs.hits) << "step " << step;
  ASSERT_EQ(ns.misses, fs.misses) << "step " << step;
  ASSERT_EQ(ns.insertions, fs.insertions) << "step " << step;
  ASSERT_EQ(ns.overwrites, fs.overwrites) << "step " << step;
  ASSERT_EQ(ns.evictions, fs.evictions) << "step " << step;
}

/// Drives both backends with an identical seeded stream of get/put/erase/
/// peek ops over a keyspace sized to force constant eviction churn.
void runDifferential(EvictionPolicy policy, std::uint64_t seed,
                     std::size_t ops) {
  auto node = makeCache(policy, util::Bytes::of(40 * 200),
                        CacheBackend::kNode);
  auto flat = makeCache(policy, util::Bytes::of(40 * 200),
                        CacheBackend::kFlat);
  util::Pcg32 rng(seed, 7);

  for (std::size_t step = 0; step < ops; ++step) {
    const std::uint32_t keyIdx = rng.next() % 200;
    std::string key = "diff-key-" + std::to_string(keyIdx);
    switch (rng.next() % 8) {
      case 0:
      case 1:
      case 2:
      case 3: {  // get dominates, as in the serve path
        const CacheEntry* a = node->get(key);
        const CacheEntry* b = flat->get(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a != nullptr) {
          ASSERT_EQ(a->size, b->size) << "step " << step;
          ASSERT_EQ(a->version, b->version) << "step " << step;
        }
        break;
      }
      case 4:
      case 5: {  // put with varying sizes to exercise accounting
        const std::uint64_t size = 50 + rng.next() % 150;
        node->put(key, CacheEntry::sized(size, step));
        flat->put(key, CacheEntry::sized(size, step));
        break;
      }
      case 6: {
        ASSERT_EQ(node->erase(key), flat->erase(key)) << "step " << step;
        break;
      }
      default: {  // peek must not touch stats on either backend
        const CacheEntry* a = node->peek(key);
        const CacheEntry* b = flat->peek(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        break;
      }
    }
    expectSameState(*node, *flat, step);
  }
  // Conservation: replaying the resident set must account to bytesUsed.
  ASSERT_LE(node->bytesUsed().count(), node->capacity().count());
  ASSERT_LE(flat->bytesUsed().count(), flat->capacity().count());
}

TEST(CacheDifferential, LruLockstep) {
  runDifferential(EvictionPolicy::kLru, 0x1234, 20000);
  runDifferential(EvictionPolicy::kLru, 0xbeef, 20000);
}

TEST(CacheDifferential, FifoLockstep) {
  runDifferential(EvictionPolicy::kFifo, 0x5678, 20000);
  runDifferential(EvictionPolicy::kFifo, 0xcafe, 20000);
}

TEST(CacheDifferential, ClockLockstep) {
  runDifferential(EvictionPolicy::kClock, 0x9abc, 20000);
  runDifferential(EvictionPolicy::kClock, 0xf00d, 20000);
}

TEST(CacheDifferential, SlruLockstep) {
  // SLRU composes two LRU segments; flat mode swaps both segments to the
  // flat backend, so the whole promotion dance must agree too.
  runDifferential(EvictionPolicy::kSlru, 0xdef0, 20000);
}

TEST(CacheDifferential, LruVictimParity) {
  LruCache node(util::Bytes::of(10 * 200));
  FlatCache flat(FlatMode::kLru, util::Bytes::of(10 * 200));
  util::Pcg32 rng(42, 3);
  for (std::size_t step = 0; step < 5000; ++step) {
    const std::string key =
        "victim-key-" + std::to_string(rng.next() % 40);
    if (rng.next() % 3 == 0) {
      (void)node.get(key);
      (void)flat.get(key);
    } else {
      node.put(key, CacheEntry::sized(100));
      flat.put(key, CacheEntry::sized(100));
    }
    ASSERT_EQ(node.victim(), flat.victim()) << "step " << step;
  }
}

// --- SlruCache constructor clamp (regression for the silent-overshoot bug:
// a fraction > 1 used to size the protected segment past the total, and the
// probation capacity wrapped around zero) ---

TEST(SlruCtorClamp, FractionAboveOneIsClamped) {
  SlruCache cache(util::Bytes::of(1000), 1.5);
  EXPECT_EQ(cache.probationSegment().capacity().count() +
                cache.protectedSegment().capacity().count(),
            1000u);
  EXPECT_EQ(cache.protectedSegment().capacity().count(), 1000u);
}

TEST(SlruCtorClamp, NegativeFractionIsClamped) {
  SlruCache cache(util::Bytes::of(1000), -0.25);
  EXPECT_EQ(cache.protectedSegment().capacity().count(), 0u);
  EXPECT_EQ(cache.probationSegment().capacity().count(), 1000u);
}

TEST(SlruCtorClamp, NanFallsBackToDefaultSplit) {
  SlruCache cache(util::Bytes::of(1000),
                  std::numeric_limits<double>::quiet_NaN());
  SlruCache reference(util::Bytes::of(1000));  // default 0.8
  EXPECT_EQ(cache.protectedSegment().capacity().count(),
            reference.protectedSegment().capacity().count());
  EXPECT_EQ(cache.probationSegment().capacity().count(),
            reference.probationSegment().capacity().count());
}

TEST(SlruCtorClamp, InfinityFallsBackToDefaultSplit) {
  SlruCache cache(util::Bytes::of(1000),
                  std::numeric_limits<double>::infinity());
  SlruCache reference(util::Bytes::of(1000));
  EXPECT_EQ(cache.protectedSegment().capacity().count(),
            reference.protectedSegment().capacity().count());
}

TEST(SlruCtorClamp, HugeCapacityDoesNotOverflowSegmentMath) {
  // Near-max capacity: double->int back-conversion must not wrap either
  // segment. The partition property is the whole contract.
  const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max() - 7;
  SlruCache cache(util::Bytes::of(cap), 0.8);
  EXPECT_EQ(cache.probationSegment().capacity().count() +
                cache.protectedSegment().capacity().count(),
            cap);
  EXPECT_LE(cache.protectedSegment().capacity().count(), cap);
}

TEST(SlruCtorClamp, StillCachesAfterDegenerateFraction) {
  SlruCache cache(util::Bytes::of(100000), 2.0);
  cache.put("k", CacheEntry::sized(10));
  // fraction clamped to 1.0: everything lands in probation first and the
  // cache still admits and serves entries.
  EXPECT_NE(cache.peek("k"), nullptr);
}

// --- Accounting invariant: drift aborts instead of silently re-zeroing ---

using CacheInvariantDeathTest = ::testing::Test;

TEST(CacheInvariantDeathTest, ViolationAborts) {
  EXPECT_DEATH(cacheInvariantFailure("test-policy", "forced for test"),
               "test-policy");
  EXPECT_DEATH(cacheInvariant(false, "lru", "accounting drift"),
               "accounting drift");
}

TEST(CacheInvariantDeathTest, HoldsOnHealthyChurn) {
  // The eviction invariant stays quiet across heavy churn on every backend.
  for (const auto backend : {CacheBackend::kNode, CacheBackend::kFlat}) {
    for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFifo,
                              EvictionPolicy::kClock}) {
      auto cache = makeCache(policy, util::Bytes::of(5 * 200), backend);
      for (int i = 0; i < 2000; ++i) {
        cache->put("churn-" + std::to_string(i % 50),
                   CacheEntry::sized(static_cast<std::uint64_t>(40 + i % 100)));
      }
      EXPECT_LE(cache->bytesUsed().count(), cache->capacity().count());
    }
  }
}

}  // namespace
}  // namespace dcache::cache
