// Unit tests for the util library: hashing, RNG, histograms, statistics,
// money and byte quantities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace dcache::util {
namespace {

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // FNV-1a 64-bit published test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, StableAcrossCalls) {
  EXPECT_EQ(hashKey("hello"), hashKey("hello"));
  EXPECT_NE(hashKey("hello"), hashKey("hellp"));
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int totalFlips = 0;
  constexpr int kTrials = 64;
  for (int bit = 0; bit < kTrials; ++bit) {
    const std::uint64_t a = mix64(0x123456789abcdefULL);
    const std::uint64_t b = mix64(0x123456789abcdefULL ^ (1ULL << bit));
    totalFlips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(totalFlips) / kTrials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, CombineOrderDependent) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hash, TransparentHasherAgreesWithStringView) {
  const TransparentStringHash hasher;
  const std::string s = "some-key";
  EXPECT_EQ(hasher(s), hasher(std::string_view(s)));
}

TEST(Rng, DeterministicBySeed) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Pcg32 c(43, 1);
  Pcg32 d(42, 1);
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs |= c.next() != d.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01InRange) {
  Pcg32 rng(7, 1);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Moments) {
  Pcg32 rng(11, 1);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(uniform01(rng));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  Pcg32 rng(3, 1);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.nextBounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, StandardNormalMoments) {
  Pcg32 rng(5, 1);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(standardNormal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, LogNormalMedian) {
  Pcg32 rng(9, 1);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) {
    sample.push_back(logNormal(rng, std::log(100.0), 0.5));
  }
  EXPECT_NEAR(exactQuantile(sample, 0.5), 100.0, 5.0);
}

TEST(Rng, ParetoTailIsHeavy) {
  Pcg32 rng(13, 1);
  double maxSeen = 0.0;
  for (int i = 0; i < 100000; ++i) {
    maxSeen = std::max(maxSeen, pareto(rng, 1.0, 1.1));
  }
  EXPECT_GT(maxSeen, 100.0);  // heavy tail reaches far past the scale
}

TEST(Histogram, QuantilesApproximateExact) {
  Histogram hist;
  std::vector<double> values;
  Pcg32 rng(1, 1);
  for (int i = 0; i < 50000; ++i) {
    const double v = std::exp(uniform01(rng) * 10.0);  // spans 5 decades
    values.push_back(v);
    hist.record(v);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exactQuantile(values, q);
    const double approx = hist.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.08) << "q=" << q;
  }
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram hist;
  hist.record(10.0);
  hist.record(20.0);
  hist.recordN(5.0, 3);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 45.0);
  EXPECT_DOUBLE_EQ(hist.min(), 5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 20.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 9.0);
}

TEST(Histogram, MergePreservesTotals) {
  Histogram a;
  Histogram b;
  a.record(1.0);
  a.record(100.0);
  b.record(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 151.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(Histogram, EmptyIsSafe) {
  const Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Stats, WelfordMatchesNaive) {
  RunningStats stats;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats whole;
  RunningStats partA;
  RunningStats partB;
  Pcg32 rng(2, 1);
  for (int i = 0; i < 1000; ++i) {
    const double x = uniform01(rng) * 100.0;
    whole.add(x);
    (i % 2 == 0 ? partA : partB).add(x);
  }
  partA.merge(partB);
  EXPECT_NEAR(partA.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(partA.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(partA.count(), whole.count());
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  // y = x^-1.2 exactly.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, -1.2));
  }
  EXPECT_NEAR(logLogSlope(xs, ys), -1.2, 1e-9);
}

TEST(Stats, GeneralizedHarmonic) {
  EXPECT_NEAR(generalizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(generalizedHarmonic(1, 2.5), 1.0, 1e-12);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-9);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-9);
}

TEST(Money, ExactArithmetic) {
  const Money a = Money::fromDollars(17.0);
  Money total;
  for (int i = 0; i < 1000; ++i) total += a;
  EXPECT_DOUBLE_EQ(total.dollars(), 17000.0);
  EXPECT_EQ(total.micros(), 17000000000LL);
}

TEST(Money, RatioAndScale) {
  const Money a = Money::fromDollars(300.0);
  const Money b = Money::fromDollars(100.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_DOUBLE_EQ((a * 0.5).dollars(), 150.0);
  EXPECT_DOUBLE_EQ((0.5 * a).dollars(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).dollars(), 200.0);
}

TEST(Money, Formatting) {
  EXPECT_EQ(Money::fromDollars(123.456).str(), "$123");
  EXPECT_EQ(Money::fromDollars(12.345).str(), "$12.35");  // rounded
  EXPECT_EQ(Money::fromDollars(0.0042).str(), "$0.0042");
}

TEST(Bytes, Construction) {
  EXPECT_EQ(Bytes::kb(1).count(), 1024u);
  EXPECT_EQ(Bytes::mb(1).count(), 1024u * 1024);
  EXPECT_EQ(Bytes::gb(1.5).count(), 1536ull * 1024 * 1024);
}

TEST(Bytes, ParseRoundtrip) {
  EXPECT_EQ(Bytes::parse("512")->count(), 512u);
  EXPECT_EQ(Bytes::parse("16KB")->count(), 16384u);
  EXPECT_EQ(Bytes::parse("1.5 MB")->count(), Bytes::mb(1.5).count());
  EXPECT_EQ(Bytes::parse("6gb")->count(), Bytes::gb(6).count());
  EXPECT_FALSE(Bytes::parse("abc").has_value());
  EXPECT_FALSE(Bytes::parse("-5KB").has_value());
  EXPECT_FALSE(Bytes::parse("").has_value());
}

TEST(Bytes, SaturatingSubtraction) {
  EXPECT_EQ((Bytes::kb(1) - Bytes::kb(2)).count(), 0u);
}

TEST(Bytes, Formatting) {
  EXPECT_EQ(Bytes::of(512).str(), "512B");
  EXPECT_EQ(Bytes::kb(23).str(), "23.0KB");
  EXPECT_EQ(Bytes::gb(6).str(), "6.0GB");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.row("short", 1);
  table.row("much-longer-name", 123456);
  const std::string out = table.str("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  // Header row plus rule plus two data rows plus title.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

}  // namespace
}  // namespace dcache::util
