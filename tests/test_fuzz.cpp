// Deterministic fuzz tests: every decoder/parser that faces external bytes
// must be total — returning an error on garbage, never crashing or reading
// out of bounds. Seeds are fixed so failures reproduce.
#include <gtest/gtest.h>

#include <string>

#include "richobject/object_codec.hpp"
#include "rpc/messages.hpp"
#include "rpc/wire.hpp"
#include "storage/row.hpp"
#include "storage/sql_parser.hpp"
#include "util/rng.hpp"
#include "workload/trace_io.hpp"

namespace dcache {
namespace {

/// Random byte string with printable bias (stresses both paths).
[[nodiscard]] std::string randomBytes(util::Pcg32& rng, std::size_t maxLen) {
  const std::size_t len = rng.nextBounded(static_cast<std::uint32_t>(maxLen));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.nextBounded(256)));
  }
  return out;
}

TEST(Fuzz, WireDecoderNeverCrashes) {
  util::Pcg32 rng(101, 1);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string bytes = randomBytes(rng, 256);
    rpc::WireDecoder dec(bytes);
    int safety = 0;
    while (!dec.done() && safety++ < 1000) {
      const auto tag = dec.readTag();
      if (!tag || !dec.skip(tag->type)) break;
    }
  }
  SUCCEED();
}

TEST(Fuzz, MessageDecodersNeverCrash) {
  util::Pcg32 rng(102, 1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string bytes = randomBytes(rng, 512);
    (void)rpc::GetRequest::decode(bytes);
    (void)rpc::GetResponse::decode(bytes);
    (void)rpc::PutRequest::decode(bytes);
    (void)rpc::PutResponse::decode(bytes);
    (void)rpc::SqlRequest::decode(bytes);
    (void)rpc::SqlResponse::decode(bytes);
    (void)rpc::VersionCheckRequest::decode(bytes);
    (void)rpc::VersionCheckResponse::decode(bytes);
  }
  SUCCEED();
}

TEST(Fuzz, MutatedValidMessagesDecodeOrReject) {
  // Start from valid encodings and mutate: decoders must stay total and
  // any successful decode must satisfy basic invariants.
  util::Pcg32 rng(103, 1);
  rpc::SqlRequest req{"SELECT * FROM tables WHERE id = ?", {"7", "owner"}};
  rpc::WireEncoder enc;
  req.encode(enc);
  const std::string valid(enc.view());
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.nextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.nextBounded(static_cast<std::uint32_t>(mutated.size()))] =
          static_cast<char>(rng.nextBounded(256));
    }
    const auto decoded = rpc::SqlRequest::decode(mutated);
    if (decoded) {
      EXPECT_LE(decoded->statement.size(), mutated.size());
    }
  }
}

TEST(Fuzz, SqlParserNeverCrashes) {
  util::Pcg32 rng(104, 1);
  const char* fragments[] = {"SELECT", "INSERT", "UPDATE", "DELETE", "FROM",
                             "WHERE",  "JOIN",   "ON",     "AND",    "SET",
                             "VALUES", "LIMIT",  "*",      ",",      "(",
                             ")",      "=",      "?",      "'str'",  "42",
                             "-7",     "ident",  "a.b",    ";",      "."};
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql;
    const int parts = 1 + static_cast<int>(rng.nextBounded(12));
    for (int p = 0; p < parts; ++p) {
      sql += fragments[rng.nextBounded(std::size(fragments))];
      sql += ' ';
    }
    const auto result = storage::parseSql(sql);
    (void)result;  // either a statement or a ParseError — both fine
  }
  SUCCEED();
}

TEST(Fuzz, SqlParserRawBytes) {
  util::Pcg32 rng(105, 1);
  for (int trial = 0; trial < 3000; ++trial) {
    (void)storage::parseSql(randomBytes(rng, 128));
  }
  SUCCEED();
}

TEST(Fuzz, RowDecoderNeverCrashes) {
  const storage::TableSchema schema(
      "t",
      {storage::Column{"id", storage::ColumnType::kInt},
       storage::Column{"x", storage::ColumnType::kDouble},
       storage::Column{"s", storage::ColumnType::kString}},
      0);
  util::Pcg32 rng(106, 1);
  for (int trial = 0; trial < 3000; ++trial) {
    (void)storage::decodeRow(schema, randomBytes(rng, 256));
  }
  SUCCEED();
}

TEST(Fuzz, ObjectCodecNeverCrashes) {
  util::Pcg32 rng(107, 1);
  for (int trial = 0; trial < 2000; ++trial) {
    (void)richobject::decodeObject(randomBytes(rng, 512));
  }
  SUCCEED();
}

TEST(Fuzz, ObjectCodecMutationRoundtrip) {
  richobject::RichTableObject object;
  object.table = richobject::TableInfo{1, 2, "t", "o", "delta", 1000, 3};
  object.privileges.push_back(
      richobject::Privilege{richobject::SecurableLevel::kTable, "u", "ALL"});
  object.properties.emplace("k", "v");
  const std::string valid = richobject::encodeObject(object);

  util::Pcg32 rng(108, 1);
  int rejected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = valid;
    mutated[rng.nextBounded(static_cast<std::uint32_t>(mutated.size()))] ^=
        static_cast<char>(1 + rng.nextBounded(255));
    if (!richobject::decodeObject(mutated)) ++rejected;
  }
  EXPECT_GT(rejected, 0);  // validation actually fires
}

TEST(Fuzz, TraceDecoderNeverCrashes) {
  util::Pcg32 rng(109, 1);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes = "DCTR1";  // valid magic, garbage body
    bytes += randomBytes(rng, 128);
    (void)workload::decodeTrace(bytes);
    (void)workload::decodeTrace(randomBytes(rng, 64));  // garbage magic
  }
  SUCCEED();
}

}  // namespace
}  // namespace dcache
