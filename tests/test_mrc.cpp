// Miss-ratio curve machinery: exact Mattson stack distances, agreement with
// a real LRU cache, Che approximation sanity, and the Zipf analytic curve
// the Section-4 model builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "cache/lru.hpp"
#include "cache/mrc.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace dcache::cache {
namespace {

TEST(Mattson, HandComputedDistances) {
  MattsonProfiler profiler;
  EXPECT_EQ(profiler.access("a"), UINT64_MAX);  // cold
  EXPECT_EQ(profiler.access("b"), UINT64_MAX);
  EXPECT_EQ(profiler.access("a"), 2u);  // b touched since
  EXPECT_EQ(profiler.access("a"), 1u);  // immediate re-access
  EXPECT_EQ(profiler.access("c"), UINT64_MAX);
  EXPECT_EQ(profiler.access("b"), 3u);  // a and c since
  EXPECT_EQ(profiler.distinctKeys(), 3u);
  EXPECT_EQ(profiler.accessCount(), 6u);
}

TEST(Mattson, MissRatioMonotoneInCapacity) {
  MattsonProfiler profiler;
  util::Pcg32 rng(17, 1);
  workload::ZipfianGenerator zipf(500, 1.0);
  for (int i = 0; i < 20000; ++i) {
    profiler.access("k" + std::to_string(zipf.nextKey(rng)));
  }
  double previous = 1.1;
  for (const std::uint64_t cap : {1u, 2u, 5u, 10u, 50u, 100u, 500u}) {
    const double mr = profiler.missRatio(cap);
    EXPECT_LE(mr, previous + 1e-12) << "capacity " << cap;
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
    previous = mr;
  }
  // At full capacity only cold misses remain: 500 distinct / 20000 accesses.
  EXPECT_NEAR(profiler.missRatio(500), 500.0 / 20000.0, 1e-9);
}

/// The profiler must predict a real LRU cache's miss ratio exactly (same
/// trace, unit-size entries), across capacities.
class MattsonVsLru : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MattsonVsLru, PredictionMatchesSimulation) {
  const std::uint64_t capacityItems = GetParam();
  // Unit-size entries: each put charges overhead + key (5 chars) + 1.
  const std::string sampleKey = "k0000";
  const std::uint64_t perEntry =
      kEntryOverheadBytes + sampleKey.size() + 1;
  LruCache cache(util::Bytes::of(capacityItems * perEntry));
  MattsonProfiler profiler;

  util::Pcg32 rng(23, 1);
  workload::ZipfianGenerator zipf(200, 0.9);
  std::uint64_t simMisses = 0;
  constexpr int kOps = 30000;
  for (int i = 0; i < kOps; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "k%04llu",
                  static_cast<unsigned long long>(zipf.nextKey(rng)));
    const std::string key(buf);
    profiler.access(key);
    if (cache.get(key) == nullptr) {
      ++simMisses;
      cache.put(key, CacheEntry::sized(1));
    }
  }
  const double simulated = static_cast<double>(simMisses) / kOps;
  const double predicted = profiler.missRatio(capacityItems);
  EXPECT_NEAR(predicted, simulated, 1e-9) << "capacity " << capacityItems;
}

INSTANTIATE_TEST_SUITE_P(Capacities, MattsonVsLru,
                         ::testing::Values(1, 4, 16, 64, 128, 200));

TEST(Che, FullCacheHasZeroMissRatio) {
  const auto rates = zipfPopularity(100, 1.2);
  EXPECT_DOUBLE_EQ(cheHitRatio(rates, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(cheHitRatio(rates, 0.0), 0.0);
}

TEST(Che, HitRatioMonotoneInItems) {
  const auto rates = zipfPopularity(1000, 1.0);
  double previous = -1.0;
  for (const double items : {1.0, 5.0, 20.0, 100.0, 500.0, 999.0}) {
    const double hr = cheHitRatio(rates, items);
    EXPECT_GT(hr, previous) << items;
    previous = hr;
  }
}

TEST(Che, CharacteristicTimeSatisfiesConstraint) {
  const auto rates = zipfPopularity(500, 1.1);
  const double items = 50.0;
  const double t = cheCharacteristicTime(rates, items);
  double occupancy = 0.0;
  for (const double p : rates) occupancy += 1.0 - std::exp(-p * t);
  EXPECT_NEAR(occupancy, items, 0.01);
}

TEST(Che, ApproximatesMattsonOnZipfTrace) {
  // Che is an approximation; on IRM Zipf traffic it should be within a few
  // points of the exact curve.
  MattsonProfiler profiler;
  util::Pcg32 rng(29, 1);
  workload::ZipfianGenerator zipf(1000, 1.2);
  for (int i = 0; i < 200000; ++i) {
    profiler.access("k" + std::to_string(zipf.nextKey(rng)));
  }
  const auto rates = zipfPopularity(1000, 1.2);
  for (const double items : {10.0, 50.0, 200.0}) {
    const double exact =
        profiler.missRatio(static_cast<std::uint64_t>(items));
    const double approx = 1.0 - cheHitRatio(rates, items);
    EXPECT_NEAR(approx, exact, 0.05) << "items " << items;
  }
}

TEST(ZipfMissRatio, HigherAlphaMissesLess) {
  // More skew => better cacheability at equal size (Fig. 2a mechanism).
  const double mrLow = zipfMissRatio(100000, 0.8, 1000);
  const double mrHigh = zipfMissRatio(100000, 1.3, 1000);
  EXPECT_LT(mrHigh, mrLow);
}

TEST(ZipfMissRatio, Bounds) {
  EXPECT_DOUBLE_EQ(zipfMissRatio(1000, 1.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(zipfMissRatio(1000, 1.0, 1000), 0.0);
  const double mid = zipfMissRatio(1000, 1.0, 100);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(ZipfPopularity, NormalizedAndDecreasing) {
  const auto rates = zipfPopularity(100, 1.2);
  double sum = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    sum += rates[i];
    if (i > 0) {
      EXPECT_LT(rates[i], rates[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace dcache::cache
