// Span-tree invariants and trace determinism: parent spans contain their
// children's charges, outcome tags agree with the deployment counters they
// shadow (degradedReads <=> kDegraded root spans), sampling is a pure
// function of (seed, request index), and the rendered trace report is
// byte-identical for any --jobs value.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/experiment.hpp"
#include "core/matrix.hpp"
#include "core/report.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/trace_hook.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

// ----------------------------------------------------------------- sampling

TEST(TraceSampling, IsAPureFunctionOfSeedAndIndex) {
  obs::TraceConfig config;
  config.sampleEvery = 10;
  config.seed = 1234;
  const obs::Tracer a(config);
  const obs::Tracer b(config);
  std::uint64_t sampled = 0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.sampled(i), b.sampled(i)) << "index " << i;
    sampled += a.sampled(i) ? 1 : 0;
  }
  // Seeded 1-in-10: the rate should be near 10%, not exactly periodic.
  EXPECT_GT(sampled, 5000u / 20);
  EXPECT_LT(sampled, 5000u / 5);

  config.seed = 4321;
  const obs::Tracer c(config);
  bool differs = false;
  for (std::uint64_t i = 0; i < 5000 && !differs; ++i) {
    differs = a.sampled(i) != c.sampled(i);
  }
  EXPECT_TRUE(differs) << "sampling ignored the seed";
}

TEST(TraceSampling, SampleOneTracesEveryRequest) {
  obs::TraceConfig config;
  config.sampleEvery = 1;
  const obs::Tracer tracer(config);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(tracer.sampled(i));
}

TEST(TraceSampling, RequestScopeIsInertWithoutATracer) {
  // Serve paths construct a scope unconditionally; with tracing off the
  // tracer pointer is null and the scope must be a no-op.
  obs::RequestScope scope(nullptr, "read");
  scope.setOutcome(sim::SpanOutcome::kHit);
}

// ------------------------------------------------------------- span trees

[[nodiscard]] obs::TraceSummary runLinkedTraced(std::uint64_t sampleEvery,
                                                std::size_t keepTraces) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  config.trace.sampleEvery = sampleEvery;
  config.trace.seed = 7;
  config.trace.keepTraces = keepTraces;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);
  for (int i = 0; i < 2000; ++i) deployment.serve(workload.next());
  deployment.clearMeters();
  for (int i = 0; i < 4000; ++i) deployment.serve(workload.next());
  return deployment.tracer()->summary();
}

TEST(SpanTree, ParentsContainTheirChildrenCharges) {
  const obs::TraceSummary summary = runLinkedTraced(/*sampleEvery=*/50,
                                                    /*keepTraces=*/8);
  ASSERT_FALSE(summary.kept.empty());
  ASSERT_EQ(summary.kept.size(),
            std::min<std::size_t>(8, summary.sampledRequests));

  for (const obs::Trace& trace : summary.kept) {
    ASSERT_FALSE(trace.spans.empty());
    EXPECT_EQ(trace.spans.front().parent, obs::SpanNode::kNoParent);

    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      const obs::SpanNode& span = trace.spans[i];
      if (i > 0) {
        ASSERT_NE(span.parent, obs::SpanNode::kNoParent)
            << "non-root span without a parent";
        EXPECT_LT(span.parent, i) << "parent must precede child";
      }
      // Self charges split by component must sum back to the self total.
      double componentSum = 0.0;
      for (const double micros : span.cpuByComponent) componentSum += micros;
      EXPECT_NEAR(componentSum, span.cpuMicros,
                  1e-6 * std::max(1.0, span.cpuMicros));

      // Subtree total = self + direct children's subtrees (recomputed
      // independently of Trace::subtreeCpuMicros' own walk).
      double childrenTotal = 0.0;
      std::uint64_t childrenBytes = 0;
      for (std::size_t j = i + 1; j < trace.spans.size(); ++j) {
        if (trace.spans[j].parent == i) {
          childrenTotal += trace.subtreeCpuMicros(j);
          childrenBytes += trace.subtreeBytes(j);
        }
      }
      const double subtree = trace.subtreeCpuMicros(i);
      EXPECT_NEAR(subtree, span.cpuMicros + childrenTotal,
                  1e-6 * std::max(1.0, subtree));
      EXPECT_GE(subtree + 1e-9, childrenTotal)
          << "child subtree exceeds parent";
      EXPECT_EQ(trace.subtreeBytes(i), span.bytesMoved + childrenBytes);
    }
    EXPECT_NEAR(trace.totalCpuMicros(), trace.subtreeCpuMicros(0),
                1e-6 * std::max(1.0, trace.totalCpuMicros()));
  }
}

TEST(SpanTree, KeptTracesAreCappedButAggregatesCoverEverything) {
  const obs::TraceSummary summary = runLinkedTraced(/*sampleEvery=*/10,
                                                    /*keepTraces=*/3);
  EXPECT_EQ(summary.kept.size(), 3u);
  EXPECT_GT(summary.sampledRequests, 3u);
  std::uint64_t keptSpans = 0;
  for (const obs::Trace& trace : summary.kept) {
    keptSpans += trace.spans.size();
  }
  EXPECT_GT(summary.spanCount, keptSpans);
}

// ------------------------------------------------- outcomes vs counters

TEST(SpanOutcomes, DegradedRootSpansMatchTheDegradedReadsCounter) {
  // Crash the remote pod with the network degraded: reads that exhaust the
  // retry budget degrade to storage, and each one must tag its root span
  // kDegraded — the only place that outcome is ever set.
  constexpr double kMicrosPerOp = 1e6 / 120000.0;
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kRemote;
  config.trace.sampleEvery = 1;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        kMicrosPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (int i = 0; i < 2000; ++i) serveOne();

  sim::FaultSchedule faults;
  faults.crashNode(static_cast<std::uint64_t>(kMicrosPerOp * 3000),
                   sim::TierKind::kRemoteCache, 0);
  faults.degradeNetwork(static_cast<std::uint64_t>(kMicrosPerOp * 3000),
                        static_cast<std::uint64_t>(kMicrosPerOp * 6000), 2.0,
                        0.05);
  deployment.installFaultSchedule(std::move(faults));

  deployment.clearMeters();
  for (int i = 0; i < 4000; ++i) serveOne();

  const core::ServeCounters& counters = deployment.counters();
  const obs::TraceSummary summary = deployment.tracer()->summary();
  ASSERT_GT(counters.degradedReads, 0u)
      << "fault scenario did not exercise the degraded path";
  EXPECT_EQ(summary.outcomes(sim::SpanOutcome::kDegraded),
            counters.degradedReads);
  // Retries/timeouts happened and were tagged somewhere in the trees.
  EXPECT_GT(summary.outcomes(sim::SpanOutcome::kTimeout) +
                summary.outcomes(sim::SpanOutcome::kRetry) +
                summary.outcomes(sim::SpanOutcome::kFailed),
            0u);
}

TEST(SpanOutcomes, ClearResetsAggregatesAndTheSamplingCounter) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  config.trace.sampleEvery = 1;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);
  for (int i = 0; i < 500; ++i) deployment.serve(workload.next());
  ASSERT_GT(deployment.tracer()->summary().requests, 0u);

  deployment.clearMeters();
  const obs::TraceSummary cleared = deployment.tracer()->summary();
  EXPECT_EQ(cleared.requests, 0u);
  EXPECT_EQ(cleared.sampledRequests, 0u);
  EXPECT_EQ(cleared.spanCount, 0u);
  EXPECT_EQ(cleared.cpuMicrosTotal, 0.0);
  EXPECT_TRUE(cleared.kept.empty());
}

// ----------------------------------------------------- jobs determinism

[[nodiscard]] std::string tracedMatrixReport(std::size_t jobs) {
  core::MatrixOptions options;
  options.jobs = jobs;
  options.rootSeed = 11;
  core::ExperimentMatrix matrix(options);
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kRemote,
        core::Architecture::kLinked, core::Architecture::kLinkedVersion}) {
    matrix.add([arch](util::Pcg32&) {
      workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
      core::DeploymentConfig deployment;
      deployment.architecture = arch;
      deployment.trace.sampleEvery = 500;
      deployment.trace.seed = 11;
      core::ExperimentConfig experiment;
      experiment.operations = 6000;
      experiment.warmupOperations = 2000;
      return core::runArchitecture(arch, workload, deployment, experiment);
    });
  }
  const std::vector<core::ExperimentResult> results = matrix.run();
  std::string report;
  for (std::size_t i = 0; i < results.size(); ++i) {
    report += core::traceTreeReport(
        results[i], "cell" + std::to_string(i), /*maxTraces=*/2);
  }
  return report;
}

TEST(TraceDeterminism, ReportIsByteIdenticalAcrossJobCounts) {
  const std::string serial = tracedMatrixReport(1);
  const std::string parallel = tracedMatrixReport(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("sampling: 1 in 500"), std::string::npos);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace dcache
