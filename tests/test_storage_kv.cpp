// Storage engine unit tests: MVCC visibility, tombstones, GC, prefix scans,
// the block cache's hit/miss/grouping behaviour and the row codec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/block_cache.hpp"
#include "storage/kv_engine.hpp"
#include "storage/row.hpp"
#include "storage/schema.hpp"
#include "util/rng.hpp"

namespace dcache::storage {
namespace {

TEST(KvEngine, LatestWinsAndSnapshotsSeePast) {
  KvEngine engine;
  EXPECT_TRUE(engine.put("k", StoredValue::sized(10), 5));
  EXPECT_TRUE(engine.put("k", StoredValue::sized(20), 9));

  const StoredValue* latest = engine.get("k");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->size, 20u);
  EXPECT_EQ(latest->version, 9u);

  const StoredValue* snapshot = engine.get("k", 7);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->size, 10u);

  EXPECT_EQ(engine.get("k", 4), nullptr);  // before the first write
}

TEST(KvEngine, RejectsOutOfOrderCommits) {
  KvEngine engine;
  EXPECT_TRUE(engine.put("k", StoredValue::sized(1), 10));
  EXPECT_FALSE(engine.put("k", StoredValue::sized(2), 10));  // same ts
  EXPECT_FALSE(engine.put("k", StoredValue::sized(2), 9));   // older ts
  EXPECT_EQ(engine.get("k")->size, 1u);
}

TEST(KvEngine, TombstoneHidesValue) {
  KvEngine engine;
  engine.put("k", StoredValue::sized(10), 1);
  EXPECT_TRUE(engine.erase("k", 2));
  EXPECT_EQ(engine.get("k"), nullptr);
  EXPECT_FALSE(engine.latestVersion("k").has_value());
  // The old snapshot still sees the value.
  ASSERT_NE(engine.get("k", 1), nullptr);
  // A later write resurrects the key.
  engine.put("k", StoredValue::sized(30), 3);
  EXPECT_EQ(engine.get("k")->size, 30u);
}

TEST(KvEngine, LiveBytesTracksNewestVersions) {
  KvEngine engine;
  engine.put("a", StoredValue::sized(100), 1);
  engine.put("b", StoredValue::sized(50), 2);
  EXPECT_EQ(engine.liveBytes().count(), 150u);
  engine.put("a", StoredValue::sized(10), 3);  // replaces the 100
  EXPECT_EQ(engine.liveBytes().count(), 60u);
  engine.erase("b", 4);
  EXPECT_EQ(engine.liveBytes().count(), 10u);
}

TEST(KvEngine, ScanPrefixOrderedAndBounded) {
  KvEngine engine;
  engine.put("t/users/r/1", StoredValue::of("u1"), 1);
  engine.put("t/users/r/2", StoredValue::of("u2"), 2);
  engine.put("t/users/r/3", StoredValue::of("u3"), 3);
  engine.put("t/orders/r/1", StoredValue::of("o1"), 4);

  std::vector<std::string> keys;
  engine.scanPrefix("t/users/r/", KvEngine::kLatest,
                    [&](std::string_view key, const StoredValue&) {
                      keys.emplace_back(key);
                      return true;
                    });
  EXPECT_EQ(keys, (std::vector<std::string>{"t/users/r/1", "t/users/r/2",
                                            "t/users/r/3"}));

  // Early stop.
  keys.clear();
  engine.scanPrefix("t/users/r/", KvEngine::kLatest,
                    [&](std::string_view key, const StoredValue&) {
                      keys.emplace_back(key);
                      return false;
                    });
  EXPECT_EQ(keys.size(), 1u);
}

TEST(KvEngine, ScanSkipsTombstones) {
  KvEngine engine;
  engine.put("p/a", StoredValue::sized(1), 1);
  engine.put("p/b", StoredValue::sized(1), 2);
  engine.erase("p/a", 3);
  std::size_t visited = engine.scanPrefix(
      "p/", KvEngine::kLatest,
      [](std::string_view, const StoredValue&) { return true; });
  EXPECT_EQ(visited, 1u);
}

TEST(KvEngine, GcTrimsHistory) {
  KvEngine engine;
  for (std::uint64_t v = 1; v <= 10; ++v) {
    engine.put("k", StoredValue::sized(v), v);
  }
  EXPECT_EQ(engine.gc(2), 8u);
  // Newest two survive.
  EXPECT_EQ(engine.get("k")->size, 10u);
  ASSERT_NE(engine.get("k", 9), nullptr);
  EXPECT_EQ(engine.get("k", 8), nullptr);  // history gone
}

TEST(BlockCache, MissThenHit) {
  BlockCache cache(util::Bytes::mb(4));
  EXPECT_FALSE(cache.touchRead("key1", 100));  // cold miss loads block
  EXPECT_TRUE(cache.touchRead("key1", 100));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BlockCache, WriteWarmsBlock) {
  BlockCache cache(util::Bytes::mb(4));
  cache.touchWrite("key1", 100);
  EXPECT_TRUE(cache.touchRead("key1", 100));
}

TEST(BlockCache, InvalidateForcesMiss) {
  BlockCache cache(util::Bytes::mb(4));
  cache.touchWrite("key1", 100);
  cache.invalidate("key1");
  EXPECT_FALSE(cache.touchRead("key1", 100));
}

TEST(BlockCache, BlocksAtLeastPageSized) {
  EXPECT_EQ(BlockCache::blockSizeFor(10), BlockCache::kBlockBytes);
  EXPECT_EQ(BlockCache::blockSizeFor(1 << 20), 1u << 20);
}

TEST(BlockCache, BlockIdGroupsAndIsStable) {
  const std::string id = BlockCache::blockIdFor("some-key");
  EXPECT_EQ(id, BlockCache::blockIdFor("some-key"));
  EXPECT_EQ(id.size(), 17u);
  EXPECT_EQ(id[0], 'b');
}

TEST(BlockCache, EvictsUnderPressure) {
  BlockCache cache(util::Bytes::of(3 * (BlockCache::kBlockBytes + 200)));
  util::Pcg32 rng(3, 1);
  for (int i = 0; i < 1000; ++i) {
    cache.touchRead("key" + std::to_string(i), 100);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytesUsed().count(), cache.capacity().count());
}

// ---- Row codec ----

TEST(RowCodec, RoundtripAllTypes) {
  const TableSchema schema("t",
                           {Column{"id", ColumnType::kInt},
                            Column{"score", ColumnType::kDouble},
                            Column{"name", ColumnType::kString}},
                           0);
  const Row row{{std::int64_t{-42}, 3.5, std::string("alice")}};
  const std::string bytes = encodeRow(schema, row);
  EXPECT_EQ(bytes.size(), encodedRowSize(schema, row));
  const auto back = decodeRow(schema, bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(valueToInt(back->at(0)), -42);
  EXPECT_DOUBLE_EQ(std::get<double>(back->at(1)), 3.5);
  EXPECT_EQ(std::get<std::string>(back->at(2)), "alice");
}

TEST(RowCodec, DecodeRejectsGarbage) {
  const TableSchema schema("t", {Column{"id", ColumnType::kInt}}, 0);
  // Length-delimited field claiming more bytes than present.
  const std::string bad = "\x0a\xff";
  EXPECT_FALSE(decodeRow(schema, bad).has_value());
}

TEST(RowCodec, DeclaredPayloadBytes) {
  TableSchema schema("t",
                     {Column{"id", ColumnType::kInt},
                      Column{"blob_bytes", ColumnType::kInt}},
                     0);
  schema.withPayloadSizeColumn("blob_bytes");
  ASSERT_TRUE(schema.payloadSizeColumn().has_value());
  const Row row{{std::int64_t{1}, std::int64_t{5000}}};
  EXPECT_EQ(declaredPayloadBytes(schema, row), 5000u);
  const Row negative{{std::int64_t{1}, std::int64_t{-10}}};
  EXPECT_EQ(declaredPayloadBytes(schema, negative), 0u);
}

TEST(RowCodec, PayloadColumnMustBeInt) {
  TableSchema schema("t",
                     {Column{"id", ColumnType::kInt},
                      Column{"name", ColumnType::kString}},
                     0);
  schema.withPayloadSizeColumn("name");  // wrong type: ignored
  EXPECT_FALSE(schema.payloadSizeColumn().has_value());
}

TEST(ValueHelpers, CrossTypeEquality) {
  EXPECT_TRUE(valueEquals(Value{std::int64_t{5}}, Value{5.0}));
  EXPECT_FALSE(valueEquals(Value{std::int64_t{5}}, Value{std::string("5")}));
  EXPECT_TRUE(valueEquals(Value{std::string("x")}, Value{std::string("x")}));
  EXPECT_EQ(valueToInt(Value{std::string("123")}), 123);
  EXPECT_EQ(valueToString(Value{std::int64_t{7}}), "7");
}

}  // namespace
}  // namespace dcache::storage
