// Sharded cache and consistent-hash ring tests: routing stability, load
// balance, minimal disruption on membership change, and the remote/linked
// cache front-ends' accounting.
#include <gtest/gtest.h>

#include <set>

#include "cache/hash_ring.hpp"
#include "cache/linked_cache.hpp"
#include "cache/remote_cache.hpp"
#include "cache/sharded.hpp"
#include "util/hash.hpp"

namespace dcache::cache {
namespace {

TEST(Sharded, RoutesKeyToSameShardAlways) {
  ShardedCache cache(util::Bytes::mb(1), 8);
  const std::size_t shard = cache.shardForKey("stable-key");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.shardForKey("stable-key"), shard);
  }
}

TEST(Sharded, GetPutEraseWork) {
  ShardedCache cache(util::Bytes::mb(1), 4);
  cache.put("k1", CacheEntry::sized(100, 5));
  const CacheEntry* hit = cache.get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->version, 5u);
  EXPECT_TRUE(cache.erase("k1"));
  EXPECT_EQ(cache.get("k1"), nullptr);
}

TEST(Sharded, AggregateStatsSumShards) {
  ShardedCache cache(util::Bytes::mb(1), 4);
  for (int i = 0; i < 100; ++i) {
    cache.put("key" + std::to_string(i), CacheEntry::sized(10));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(cache.get("key" + std::to_string(i)), nullptr);
  }
  const CacheStats agg = cache.aggregateStats();
  EXPECT_EQ(agg.hits, 100u);
  EXPECT_EQ(agg.insertions, 100u);
  EXPECT_EQ(cache.itemCount(), 100u);
}

TEST(Sharded, ShardsRoughlyBalanced) {
  ShardedCache cache(util::Bytes::mb(8), 4);
  for (int i = 0; i < 20000; ++i) {
    cache.put("key" + std::to_string(i), CacheEntry::sized(1));
  }
  for (std::size_t s = 0; s < cache.shardCount(); ++s) {
    EXPECT_NEAR(static_cast<double>(cache.shard(s).itemCount()), 5000.0,
                5000.0 * 0.15);
  }
}

TEST(HashRing, OwnerStableAcrossQueries) {
  HashRing ring;
  for (std::size_t m = 0; m < 5; ++m) ring.addMember(m);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto owner = ring.ownerOf(util::hashU64(k));
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(ring.ownerOf(util::hashU64(k)), owner);
  }
}

TEST(HashRing, EmptyRingHasNoOwner) {
  const HashRing ring;
  EXPECT_FALSE(ring.ownerOf(123).has_value());
}

TEST(HashRing, BalancedOwnership) {
  HashRing ring(160);
  for (std::size_t m = 0; m < 4; ++m) ring.addMember(m);
  const auto shares = ring.ownershipShares(50000);
  ASSERT_EQ(shares.size(), 4u);
  for (const double share : shares) {
    EXPECT_NEAR(share, 0.25, 0.08);
  }
}

TEST(HashRing, RemovalMovesOnlyVictimKeys) {
  HashRing ring;
  for (std::size_t m = 0; m < 4; ++m) ring.addMember(m);
  std::vector<std::size_t> before(10000);
  for (std::uint64_t k = 0; k < before.size(); ++k) {
    before[k] = *ring.ownerOf(util::hashU64(k));
  }
  ASSERT_TRUE(ring.removeMember(2));
  EXPECT_FALSE(ring.removeMember(2));
  std::size_t moved = 0;
  for (std::uint64_t k = 0; k < before.size(); ++k) {
    const std::size_t after = *ring.ownerOf(util::hashU64(k));
    EXPECT_NE(after, 2u);
    if (before[k] != 2 && after != before[k]) ++moved;
  }
  // Consistent hashing: keys not owned by the removed member must not move.
  EXPECT_EQ(moved, 0u);
}

TEST(HashRing, DuplicateAddIgnored) {
  HashRing ring;
  ring.addMember(1);
  ring.addMember(1);
  EXPECT_EQ(ring.memberCount(), 1u);
}

TEST(HashRing, ReplicasAreDistinctAndLedByTheOwner) {
  HashRing ring;
  for (std::size_t m = 0; m < 5; ++m) ring.addMember(m);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const auto replicas = ring.replicasOf(util::hashU64(k), 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], *ring.ownerOf(util::hashU64(k)));
    const std::set<std::size_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size());
  }
}

TEST(HashRing, ReplicaCountSaturatesAtMembership) {
  HashRing ring;
  EXPECT_TRUE(ring.replicasOf(42, 3).empty());  // empty ring: no owners
  ring.addMember(0);
  ring.addMember(1);
  // Asking for more replicas than members returns every member once.
  const auto replicas = ring.replicasOf(42, 5);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_NE(replicas[0], replicas[1]);
  // n = 0 is a valid request for nothing.
  EXPECT_TRUE(ring.replicasOf(42, 0).empty());
}

TEST(HashRing, ChurnRestoresExactReplicaSets) {
  // Replica placement, like ownership, depends only on the membership
  // set — a removal and re-add of the same member must restore every
  // key's replica list exactly (vnode positions are index-derived).
  HashRing ring;
  for (std::size_t m = 0; m < 4; ++m) ring.addMember(m);
  std::vector<std::vector<std::size_t>> before(2000);
  for (std::uint64_t k = 0; k < before.size(); ++k) {
    before[k] = ring.replicasOf(util::hashU64(k), 2);
  }

  ASSERT_TRUE(ring.removeMember(2));
  for (std::uint64_t k = 0; k < before.size(); ++k) {
    const auto during = ring.replicasOf(util::hashU64(k), 2);
    ASSERT_EQ(during.size(), 2u);
    // The removed member never appears...
    EXPECT_NE(during[0], 2u);
    EXPECT_NE(during[1], 2u);
    // ...and keys it served neither of keep their exact replica set.
    if (before[k][0] != 2 && before[k][1] != 2) {
      EXPECT_EQ(during, before[k]);
    }
  }

  ring.addMember(2);
  for (std::uint64_t k = 0; k < before.size(); ++k) {
    EXPECT_EQ(ring.replicasOf(util::hashU64(k), 2), before[k]);
  }
}

// ---- Remote / linked cache front-ends over the sim fabric ----

class CacheFrontends : public ::testing::Test {
 protected:
  CacheFrontends()
      : appTier_("app", sim::TierKind::kAppServer, 3),
        cacheTier_("cache", sim::TierKind::kRemoteCache, 3),
        channel_(network_, rpc::SerializationModel{}) {}

  sim::NetworkModel network_;
  sim::Tier appTier_;
  sim::Tier cacheTier_;
  rpc::Channel channel_;
};

TEST_F(CacheFrontends, RemoteCacheMissThenHit) {
  RemoteCache remote(cacheTier_, util::Bytes::mb(64), channel_);
  sim::Node& app = appTier_.node(0);

  auto miss = remote.get(app, "k");
  EXPECT_FALSE(miss.hit);
  remote.put(app, "k", 4096, 3);
  auto hit = remote.get(app, "k");
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.size, 4096u);
  EXPECT_EQ(hit.version, 3u);
  EXPECT_GT(hit.latencyMicros, 0.0);

  // RPC + value serialization must have charged the app server.
  EXPECT_GT(app.cpu().micros(sim::CpuComponent::kRpcFraming), 0.0);
  EXPECT_GT(app.cpu().micros(sim::CpuComponent::kDeserialization), 0.0);
  // And the owning cache node paid for the probe.
  const CacheStats agg = remote.aggregateStats();
  EXPECT_EQ(agg.hits, 1u);
  EXPECT_EQ(agg.misses, 1u);
}

TEST_F(CacheFrontends, RemoteInvalidateRemoves) {
  RemoteCache remote(cacheTier_, util::Bytes::mb(64), channel_);
  sim::Node& app = appTier_.node(0);
  remote.put(app, "k", 100, 1);
  remote.invalidate(app, "k");
  EXPECT_FALSE(remote.get(app, "k").hit);
}

TEST_F(CacheFrontends, LinkedLocalHitPaysNoRpcOrMarshalling) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  linked.fill("k", 4096, 9);
  const std::size_t owner = linked.ownerOf("k");

  // Snapshot app CPU, probe from the owner itself.
  const double framingBefore =
      appTier_.node(owner).cpu().micros(sim::CpuComponent::kRpcFraming);
  const auto hit = linked.get(owner, "k");
  EXPECT_TRUE(hit.hit);
  EXPECT_TRUE(hit.local);
  EXPECT_EQ(hit.version, 9u);
  EXPECT_DOUBLE_EQ(hit.latencyMicros, 0.0);
  EXPECT_DOUBLE_EQ(
      appTier_.node(owner).cpu().micros(sim::CpuComponent::kRpcFraming),
      framingBefore);
}

TEST_F(CacheFrontends, LinkedForwardedProbePaysRpc) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  linked.fill("k", 4096, 1);
  const std::size_t owner = linked.ownerOf("k");
  const std::size_t other = (owner + 1) % appTier_.size();

  const auto hit = linked.get(other, "k");
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.local);
  EXPECT_GT(hit.latencyMicros, 0.0);
  EXPECT_GT(appTier_.node(other).cpu().micros(sim::CpuComponent::kRpcFraming),
            0.0);
}

TEST_F(CacheFrontends, LinkedRemoveServerDropsShard) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  linked.fill("k", 100, 1);
  const std::size_t owner = linked.ownerOf("k");
  linked.removeServer(owner);
  const std::size_t newOwner = linked.ownerOf("k");
  EXPECT_NE(newOwner, owner);
  EXPECT_FALSE(linked.get(newOwner, "k").hit);  // shard content was dropped
}

TEST_F(CacheFrontends, LinkedCrashRestartChurnRestoresExactOwnership) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  constexpr int kKeys = 2000;
  std::vector<std::size_t> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[k] = linked.ownerOf("key" + std::to_string(k));
  }

  const std::size_t victim = 1;
  linked.removeServer(victim);
  EXPECT_FALSE(linked.hasServer(victim));
  for (int k = 0; k < kKeys; ++k) {
    const std::size_t after = linked.ownerOf("key" + std::to_string(k));
    // Routing never targets the removed member, and consistent hashing
    // moves only the victim's keys.
    EXPECT_NE(after, victim);
    if (before[k] != victim) EXPECT_EQ(after, before[k]);
  }

  // Restart: vnode points depend only on the member index, so ownership
  // returns to exactly the pre-crash partition.
  linked.addServer(victim);
  EXPECT_TRUE(linked.hasServer(victim));
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(linked.ownerOf("key" + std::to_string(k)), before[k]);
  }
}

TEST_F(CacheFrontends, LinkedRemoveServerSparesSurvivorShards) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  // Fill until every server owns at least one key we can name.
  std::vector<std::string> keyOwnedBy(appTier_.size());
  for (int k = 0; keyOwnedBy[0].empty() || keyOwnedBy[1].empty() ||
                  keyOwnedBy[2].empty();
       ++k) {
    const std::string key = "key" + std::to_string(k);
    keyOwnedBy[linked.ownerOf(key)] = key;
    linked.fill(key, 128, 1);
  }

  const std::size_t victim = linked.ownerOf(keyOwnedBy[0]);
  linked.removeServer(victim);
  // Only the victim's shard was dropped: survivors still serve their keys.
  for (std::size_t s = 0; s < appTier_.size(); ++s) {
    if (s == victim) continue;
    const auto hit = linked.get(s, keyOwnedBy[s]);
    EXPECT_TRUE(hit.hit) << "survivor " << s << " lost its shard";
  }
  EXPECT_FALSE(linked.get((victim + 1) % appTier_.size(),
                          keyOwnedBy[victim])
                   .hit);
}

TEST_F(CacheFrontends, LinkedAddServerComesBackColdAndIdempotent) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  linked.fill("k", 256, 7);
  const std::size_t owner = linked.ownerOf("k");

  // addServer on a current member is a no-op: the warm shard survives.
  linked.addServer(owner);
  EXPECT_TRUE(linked.get(owner, "k").hit);

  linked.removeServer(owner);
  linked.addServer(owner);
  // A genuine restart rejoins cold.
  EXPECT_EQ(linked.shard(owner).itemCount(), 0u);
  EXPECT_FALSE(linked.get(owner, "k").hit);
}

TEST_F(CacheFrontends, LinkedDoubleRemoveSparesDrainingShard) {
  // Regression: a replayed cold remove must not double-apply. During a
  // warm drain the server is out of the ring but its shard still holds
  // the keys the handoff window is migrating — an unguarded second
  // removeServer would clear them mid-transfer.
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  linked.fill("k", 256, 1);
  const std::size_t owner = linked.ownerOf("k");

  linked.drainServer(owner);
  EXPECT_FALSE(linked.hasServer(owner));
  EXPECT_NE(linked.ownerOf("k"), owner);  // ownership moved immediately
  ASSERT_NE(linked.shard(owner).peek("k"), nullptr);  // contents kept

  linked.drainServer(owner);   // replayed drain: no-op
  linked.removeServer(owner);  // replayed cold remove: non-member, no-op
  EXPECT_NE(linked.shard(owner).peek("k"), nullptr);

  // Window closes: whatever was not migrated is retired with the process.
  linked.dropShard(owner);
  EXPECT_EQ(linked.shard(owner).itemCount(), 0u);
}

TEST_F(CacheFrontends, RemoteMembershipJoinLeaveIdempotent) {
  RemoteCache remote(cacheTier_, util::Bytes::mb(64), channel_);
  sim::Node& app = appTier_.node(0);
  remote.enableMembership();
  ASSERT_EQ(remote.memberCount(), cacheTier_.size());

  remote.put(app, "k", 4096, 1);
  const std::size_t owner = remote.ownerOf("k");

  // Double join of a member: no-op, the warm shard survives.
  remote.joinNode(owner);
  EXPECT_TRUE(remote.get(app, "k").hit);

  // Leave moves ownership but keeps the pod's contents for the handoff
  // window; a replayed leave is a no-op.
  remote.leaveNode(owner);
  remote.leaveNode(owner);
  EXPECT_FALSE(remote.isMember(owner));
  EXPECT_EQ(remote.memberCount(), cacheTier_.size() - 1);
  EXPECT_NE(remote.ownerOf("k"), owner);
  EXPECT_NE(remote.shardForNode(owner).peek("k"), nullptr);

  // Rejoin restores the exact pre-leave partition (vnode points depend
  // only on the member index), so the key routes home again.
  remote.joinNode(owner);
  EXPECT_EQ(remote.memberCount(), cacheTier_.size());
  EXPECT_EQ(remote.ownerOf("k"), owner);
}

TEST_F(CacheFrontends, LinkedUpdateAndInvalidate) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  const std::size_t owner = linked.ownerOf("k");
  const std::size_t writer = (owner + 1) % appTier_.size();

  linked.update(writer, "k", 256, 2);
  auto hit = linked.get(owner, "k");
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.version, 2u);

  linked.invalidate(writer, "k");
  EXPECT_FALSE(linked.get(owner, "k").hit);
}

TEST_F(CacheFrontends, RemoteReplicationPlacesDistinctCopies) {
  RemoteCache remote(cacheTier_, util::Bytes::mb(64), channel_);
  EXPECT_TRUE(remote.replicasForKey("k").empty());  // off by default
  remote.enableReplication(2);
  const auto replicas = remote.replicasForKey("k");
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_NE(replicas[0], replicas[1]);
  EXPECT_EQ(remote.replicasForKey("k"), replicas);  // placement is stable

  sim::Node& app = appTier_.node(0);
  remote.putAt(app, replicas[0], "k", 4096, 3);
  remote.putAt(app, replicas[1], "k", 4096, 3);
  // Each copy is independently probeable; the primary going down does not
  // take the replica's copy with it.
  EXPECT_TRUE(remote.getAt(app, replicas[1], "k").hit);
  cacheTier_.node(replicas[0]).setUp(false);
  EXPECT_FALSE(remote.nodeUp(replicas[0]));
  EXPECT_TRUE(remote.getAt(app, replicas[1], "k").hit);
}

TEST_F(CacheFrontends, LinkedReplicaFillsAreIndependentCopies) {
  LinkedCache linked(appTier_, util::Bytes::mb(64), channel_);
  const auto replicas = linked.replicasOf("k", 2);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0], linked.ownerOf("k"));
  EXPECT_NE(replicas[0], replicas[1]);

  linked.fillAt(replicas[0], "k", 256, 4);
  linked.updateAt(replicas[1], replicas[1], "k", 256, 4);
  // A local probe at the fallback shard hits without touching the owner.
  const auto hit = linked.getAt(replicas[1], replicas[1], "k");
  EXPECT_TRUE(hit.hit);
  EXPECT_TRUE(hit.local);
  EXPECT_EQ(hit.version, 4u);
  // Invalidating one copy leaves the other (the deployment fans out).
  linked.invalidateAt(replicas[0], replicas[0], "k");
  EXPECT_FALSE(linked.getAt(replicas[0], replicas[0], "k").hit);
  EXPECT_TRUE(linked.getAt(replicas[1], replicas[1], "k").hit);
}

}  // namespace
}  // namespace dcache::cache
