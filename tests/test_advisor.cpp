// Tests for the trace-driven cache advisor and the TTL freshness bound in
// the deployment.
#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/deployment.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] workload::SyntheticConfig skewedWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 5000;
  config.alpha = 1.2;
  config.valueSize = 4096;
  config.readRatio = 0.95;
  return config;
}

TEST(Advisor, CheapDramMeansCacheEverything) {
  // At list prices, 5000 x 4KB costs cents while misses cost cores: the
  // optimum is full coverage — the paper's "caches pay for themselves".
  AdvisorConfig config;
  config.sampleOps = 60000;
  CacheAdvisor advisor(config);
  workload::SyntheticWorkload workload(skewedWorkload());
  const Recommendation rec = advisor.advise(workload);

  EXPECT_GT(rec.distinctKeys, 1000u);
  EXPECT_EQ(rec.bestSize.count(),
            rec.distinctKeys * skewedWorkload().valueSize);
  EXPECT_GT(rec.savingFactor(), 5.0);
  EXPECT_LT(rec.missRatioAtBest, 0.1);
  EXPECT_GT(rec.costAtZero.dollars(), rec.costAtBest.dollars());
  EXPECT_FALSE(rec.curve.empty());
}

TEST(Advisor, InteriorOptimumWhenDramIsDear) {
  // Large objects + expensive DRAM: the tail never repays its bytes, so
  // the optimum is strictly interior (§4: grow s_A until the marginal
  // benefit equals the memory price).
  AdvisorConfig config;
  config.sampleOps = 60000;
  config.pricing = Pricing::gcp().withMemoryMultiplier(200.0);
  workload::SyntheticConfig big = skewedWorkload();
  big.valueSize = 1 << 20;
  workload::SyntheticWorkload workload(big);
  const Recommendation rec = CacheAdvisor(config).advise(workload);
  EXPECT_GT(rec.bestSize.count(), 0u);
  EXPECT_LT(rec.bestSize.count(), rec.distinctKeys * big.valueSize);
  EXPECT_GT(rec.savingFactor(), 1.0);
}

TEST(Advisor, RecommendationIsOptimalOnItsOwnCurve) {
  CacheAdvisor advisor;
  workload::SyntheticWorkload workload(skewedWorkload());
  const Recommendation rec = advisor.advise(workload);
  for (const CurvePoint& point : rec.curve) {
    EXPECT_GE(point.monthlyCost.micros(), rec.costAtBest.micros());
  }
}

TEST(Advisor, CurveMissRatiosMonotone) {
  CacheAdvisor advisor;
  workload::SyntheticWorkload workload(skewedWorkload());
  const Recommendation rec = advisor.advise(workload);
  for (std::size_t i = 1; i < rec.curve.size(); ++i) {
    EXPECT_LE(rec.curve[i].missRatio, rec.curve[i - 1].missRatio + 1e-12);
    EXPECT_GE(rec.curve[i].cacheSize.count(),
              rec.curve[i - 1].cacheSize.count());
  }
}

TEST(Advisor, ExpensiveMemoryShrinksTheRecommendation) {
  workload::SyntheticConfig big = skewedWorkload();
  big.valueSize = 1 << 20;  // DRAM must matter for the price to bite
  AdvisorConfig cheap;
  AdvisorConfig expensive;
  expensive.pricing = Pricing::gcp().withMemoryMultiplier(400.0);
  workload::SyntheticWorkload workloadA(big);
  workload::SyntheticWorkload workloadB(big);
  const auto cheapRec = CacheAdvisor(cheap).advise(workloadA);
  const auto priceyRec = CacheAdvisor(expensive).advise(workloadB);
  EXPECT_LT(priceyRec.bestSize.count(), cheapRec.bestSize.count());
}

TEST(Advisor, HigherLoadGrowsTheRecommendation) {
  AdvisorConfig light;
  light.qps = 5000;
  AdvisorConfig heavy;
  heavy.qps = 500000;
  workload::SyntheticWorkload workloadA(skewedWorkload());
  workload::SyntheticWorkload workloadB(skewedWorkload());
  const auto lightRec = CacheAdvisor(light).advise(workloadA);
  const auto heavyRec = CacheAdvisor(heavy).advise(workloadB);
  EXPECT_GE(heavyRec.bestSize.count(), lightRec.bestSize.count());
}

TEST(Advisor, EmptyWorkloadIsSafe) {
  AdvisorConfig config;
  config.sampleOps = 0;
  CacheAdvisor advisor(config);
  workload::SyntheticWorkload workload(skewedWorkload());
  const Recommendation rec = advisor.advise(workload);
  EXPECT_EQ(rec.bestSize.count(), 0u);
  EXPECT_EQ(rec.costAtBest.micros(), rec.costAtZero.micros());
}

TEST(Advisor, SummaryMentionsTheNumbers) {
  CacheAdvisor advisor;
  workload::SyntheticWorkload workload(skewedWorkload());
  const Recommendation rec = advisor.advise(workload);
  const std::string summary = rec.summary();
  EXPECT_NE(summary.find("recommended"), std::string::npos);
  EXPECT_NE(summary.find("saving"), std::string::npos);
}

// ---- TTL freshness bound in the deployment ----

[[nodiscard]] DeploymentConfig ttlDeployment(std::uint64_t ttlMicros) {
  DeploymentConfig config;
  config.architecture = Architecture::kLinked;
  config.appCachePerNode = util::Bytes::mb(64);
  config.blockCachePerNode = util::Bytes::mb(64);
  config.ttlFreshnessMicros = ttlMicros;
  return config;
}

TEST(TtlFreshness, ExpiredHitsRevalidate) {
  Deployment deployment(ttlDeployment(1000));
  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 50;
  workloadConfig.readRatio = 1.0;
  workload::SyntheticWorkload workload(workloadConfig);
  deployment.populateKv(workload);

  // Fill at t=0, read within the TTL, then far past it.
  deployment.setSimTimeMicros(0);
  for (int i = 0; i < 200; ++i) deployment.serve(workload.next());
  const auto before = deployment.counters().ttlExpirations;
  deployment.setSimTimeMicros(500);
  for (int i = 0; i < 50; ++i) deployment.serve(workload.next());
  // Refills at t<=500 keep entries fresh until t=1500; jump far beyond.
  deployment.setSimTimeMicros(10000);
  for (int i = 0; i < 50; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().ttlExpirations, before);
}

TEST(TtlFreshness, DisabledByDefault) {
  Deployment deployment(ttlDeployment(0));
  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 50;
  workloadConfig.readRatio = 1.0;
  workload::SyntheticWorkload workload(workloadConfig);
  deployment.populateKv(workload);
  deployment.setSimTimeMicros(0);
  for (int i = 0; i < 100; ++i) deployment.serve(workload.next());
  deployment.setSimTimeMicros(1ULL << 40);  // far future
  for (int i = 0; i < 100; ++i) deployment.serve(workload.next());
  EXPECT_EQ(deployment.counters().ttlExpirations, 0u);
}

TEST(TtlFreshness, RunnerDrivesTheClock) {
  // With qps=1000 (1ms between ops) and a 10ms TTL, a small hot keyspace
  // sees periodic revalidations.
  DeploymentConfig config = ttlDeployment(10000);
  Deployment deployment(config);
  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 20;
  workloadConfig.readRatio = 1.0;
  workload::SyntheticWorkload workload(workloadConfig);
  deployment.populateKv(workload);

  ExperimentConfig experiment;
  experiment.operations = 2000;
  experiment.warmupOperations = 100;
  experiment.qps = 1000;
  ExperimentRunner runner(experiment);
  const auto result = runner.run(deployment, workload);
  EXPECT_GT(result.counters.ttlExpirations, 50u);
  // Freshness costs hit ratio but not correctness.
  EXPECT_LT(result.counters.hitRatio(), 1.0);
  EXPECT_GT(result.counters.hitRatio(), 0.3);
}

TEST(TtlFreshness, CostSitsBetweenLinkedAndVersionChecked) {
  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 2000;
  workloadConfig.valueSize = 8192;
  ExperimentConfig experiment;
  experiment.operations = 20000;
  experiment.warmupOperations = 20000;
  experiment.qps = 50000;

  auto runWith = [&](DeploymentConfig config) {
    workload::SyntheticWorkload workload(workloadConfig);
    Deployment deployment(config);
    deployment.populateKv(workload);
    ExperimentRunner runner(experiment);
    return runner.run(deployment, workload);
  };

  const auto linked = runWith(ttlDeployment(0));
  const auto ttl = runWith(ttlDeployment(100000));  // 100ms bound
  DeploymentConfig versioned = ttlDeployment(0);
  versioned.architecture = Architecture::kLinkedVersion;
  const auto checked = runWith(versioned);

  EXPECT_LE(linked.cost.totalCost.micros(), ttl.cost.totalCost.micros());
  EXPECT_LT(ttl.cost.totalCost.micros(), checked.cost.totalCost.micros());
}

}  // namespace
}  // namespace dcache::core
