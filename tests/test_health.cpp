// Gray-failure detection and survival tests: the HealthMonitor's
// phi-accrual-style suspicion accounting (failure- and outlier-driven
// ejection, probing re-admission, the per-tier quorum guard), its wiring
// into the RPC channel as a CallObserver, and the deployment-level loop —
// a slow/flaky node gets ejected, reads fall back to replicas, and the
// whole timeline replays byte-for-byte from the same seed.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/health.hpp"
#include "rpc/channel.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

// ------------------------------------------------------------ monitor unit

core::HealthPolicy testPolicy() {
  core::HealthPolicy policy;
  policy.enabled = true;
  return policy;
}

class HealthMonitorTest : public ::testing::Test {
 protected:
  HealthMonitorTest() : monitor_(testPolicy()) {
    nodes_.reserve(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes_.emplace_back("cache", sim::TierKind::kRemoteCache);
      monitor_.registerNode(nodes_[i], sim::TierKind::kRemoteCache, i);
    }
  }

  /// Feed `count` ok calls at `latency` to node `i` (clock unused by the
  /// non-probe path).
  void okCalls(std::size_t i, int count, double latency) {
    for (int c = 0; c < count; ++c) {
      monitor_.onCallOutcome(nodes_[i], true, latency, 0);
    }
  }

  static constexpr std::size_t kNodes = 4;
  core::HealthMonitor monitor_;
  std::vector<sim::Node> nodes_;
};

TEST_F(HealthMonitorTest, ConsecutiveFailuresEject) {
  const auto toEject =
      static_cast<int>(monitor_.policy().suspicionToEject /
                       monitor_.policy().failureSuspicion);
  for (int c = 0; c < toEject - 1; ++c) {
    monitor_.onCallOutcome(nodes_[0], false, 0.0, 100);
  }
  EXPECT_FALSE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 100);
  EXPECT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  ASSERT_EQ(monitor_.totalEjections(), 1u);
  EXPECT_EQ(monitor_.ejections()[0].index, 0u);
  EXPECT_EQ(monitor_.ejections()[0].atMicros, 100u);
}

TEST_F(HealthMonitorTest, LatencyOutlierEjectsWithoutASingleFailure) {
  // Three healthy peers at ~50us establish the tier reference...
  for (std::size_t i = 1; i < kNodes; ++i) okCalls(i, 20, 50.0);
  EXPECT_NEAR(monitor_.tierReferenceLatency(sim::TierKind::kRemoteCache),
              50.0, 1.0);
  // ...and a node answering 10x slower — every call succeeding — accrues
  // outlier suspicion until it is ejected. This is the signal circuit
  // breakers never see.
  int calls = 0;
  while (!monitor_.ejected(sim::TierKind::kRemoteCache, 0) && calls < 200) {
    monitor_.onCallOutcome(nodes_[0], true, 500.0, 0);
    ++calls;
  }
  EXPECT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  // It took minSamples to qualify plus suspicionToEject outlier hits.
  EXPECT_GE(calls, static_cast<int>(monitor_.policy().minSamples));
}

TEST_F(HealthMonitorTest, HealthyCallsDecaySuspicion) {
  okCalls(1, 20, 50.0);
  okCalls(2, 20, 50.0);
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  const double accrued = monitor_.suspicion(sim::TierKind::kRemoteCache, 0);
  EXPECT_DOUBLE_EQ(accrued, 2.0 * monitor_.policy().failureSuspicion);
  okCalls(0, 20, 50.0);
  // A burst of clean calls walks the score back down (never below zero).
  EXPECT_LT(monitor_.suspicion(sim::TierKind::kRemoteCache, 0), accrued);
  okCalls(0, 100, 50.0);
  EXPECT_DOUBLE_EQ(monitor_.suspicion(sim::TierKind::kRemoteCache, 0), 0.0);
}

TEST_F(HealthMonitorTest, EjectionQuotaProtectsTheQuorum) {
  // Every node failing at once is a tier-wide event (outage, overload),
  // not a bad apple: the quota stops ejection at maxEjectedPerTier.
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (int c = 0; c < 20; ++c) {
      monitor_.onCallOutcome(nodes_[i], false, 0.0, 0);
    }
  }
  EXPECT_EQ(monitor_.currentlyEjected(sim::TierKind::kRemoteCache),
            monitor_.policy().maxEjectedPerTier);
  EXPECT_EQ(monitor_.totalEjections(), monitor_.policy().maxEjectedPerTier);
}

TEST_F(HealthMonitorTest, ProbeCadenceAndCleanProbesReadmit) {
  for (int c = 0; c < 6; ++c) monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  ASSERT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  const auto interval =
      static_cast<std::uint64_t>(monitor_.policy().probeIntervalMicros);

  // Healthy nodes always pass the routing gate; the ejected node admits
  // exactly one probe per interval.
  EXPECT_TRUE(monitor_.allowRequest(sim::TierKind::kRemoteCache, 1, 0));
  EXPECT_FALSE(monitor_.allowRequest(sim::TierKind::kRemoteCache, 0,
                                     interval - 1));
  EXPECT_TRUE(monitor_.allowRequest(sim::TierKind::kRemoteCache, 0, interval));
  EXPECT_FALSE(monitor_.allowRequest(sim::TierKind::kRemoteCache, 0,
                                     interval + 1));
  EXPECT_EQ(monitor_.probesGranted(), 1u);

  // Clean probes re-admit after reAdmitProbes in a row.
  std::uint64_t now = interval;
  for (std::size_t p = 0; p < monitor_.policy().reAdmitProbes; ++p) {
    monitor_.onCallOutcome(nodes_[0], true, 50.0, now);
    now += interval;
  }
  EXPECT_FALSE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_EQ(monitor_.readmissions(), 1u);
  EXPECT_EQ(monitor_.currentlyEjected(sim::TierKind::kRemoteCache), 0u);
}

TEST_F(HealthMonitorTest, SlowProbesDoNotReadmit) {
  // Peers at 50us set the reference; the ejected node's probes *succeed*
  // but crawl — a probe that comes home slow is not evidence of recovery.
  for (std::size_t i = 1; i < kNodes; ++i) okCalls(i, 20, 50.0);
  for (int c = 0; c < 6; ++c) monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  ASSERT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  for (int p = 0; p < 10; ++p) {
    monitor_.onCallOutcome(nodes_[0], true, 500.0, 0);
  }
  EXPECT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_EQ(monitor_.readmissions(), 0u);
}

TEST_F(HealthMonitorTest, ReadmissionCarriesHysteresis) {
  for (int c = 0; c < 6; ++c) monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  for (std::size_t p = 0; p < monitor_.policy().reAdmitProbes; ++p) {
    monitor_.onCallOutcome(nodes_[0], true, 50.0, 0);
  }
  ASSERT_FALSE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  // A readmitted node re-enters half-way to the threshold: if it is still
  // sick (flapping), a couple of fresh failures re-eject it instead of a
  // full window's worth of damage.
  EXPECT_DOUBLE_EQ(monitor_.suspicion(sim::TierKind::kRemoteCache, 0),
                   0.5 * monitor_.policy().suspicionToEject);
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  EXPECT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_EQ(monitor_.totalEjections(), 2u);
}

TEST_F(HealthMonitorTest, ReferenceLatencyUsesLowerMedian) {
  // In a 2-qualified-node tier [healthy, slow] the reference must be the
  // healthy node, or the slow one could never read as an outlier.
  okCalls(0, 20, 50.0);
  okCalls(1, 20, 500.0);
  EXPECT_NEAR(monitor_.tierReferenceLatency(sim::TierKind::kRemoteCache),
              50.0, 1.0);
}

TEST_F(HealthMonitorTest, UnregisteredNodesAreIgnored) {
  sim::Node stranger("stranger", sim::TierKind::kSqlFrontend);
  for (int c = 0; c < 20; ++c) {
    monitor_.onCallOutcome(stranger, false, 0.0, 0);
  }
  EXPECT_EQ(monitor_.totalEjections(), 0u);
  EXPECT_FALSE(monitor_.ejected(sim::TierKind::kSqlFrontend, 0));
}

TEST_F(HealthMonitorTest, DeregisteredNodeDropsProbeAndEjectionState) {
  // Eject node 0, then deregister it — the planned-leave path. A departed
  // pod must not linger as a ghost: no probe cadence against it, its
  // ejection slot released, its suspicion gone.
  for (int c = 0; c < 20; ++c) monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  ASSERT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  ASSERT_EQ(monitor_.currentlyEjected(sim::TierKind::kRemoteCache), 1u);

  monitor_.deregisterNode(nodes_[0], sim::TierKind::kRemoteCache, 0);
  EXPECT_FALSE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_EQ(monitor_.currentlyEjected(sim::TierKind::kRemoteCache), 0u);
  EXPECT_DOUBLE_EQ(monitor_.suspicion(sim::TierKind::kRemoteCache, 0), 0.0);

  // Straggler outcomes from in-flight calls to the departed pod are
  // ignored — the observer no longer knows the node.
  monitor_.onCallOutcome(nodes_[0], false, 0.0, 0);
  EXPECT_DOUBLE_EQ(monitor_.suspicion(sim::TierKind::kRemoteCache, 0), 0.0);

  // The released ejection slot is real: with the per-tier quota of 1 a
  // genuine bad apple can still be ejected after the planned leave.
  for (int c = 0; c < 20; ++c) monitor_.onCallOutcome(nodes_[1], false, 0.0, 0);
  EXPECT_TRUE(monitor_.ejected(sim::TierKind::kRemoteCache, 1));

  // A rejoin registers fresh state: healthy, unsuspected, routable.
  monitor_.registerNode(nodes_[0], sim::TierKind::kRemoteCache, 0);
  EXPECT_FALSE(monitor_.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_DOUBLE_EQ(monitor_.suspicion(sim::TierKind::kRemoteCache, 0), 0.0);
  EXPECT_TRUE(monitor_.allowRequest(sim::TierKind::kRemoteCache, 0, 12345));
}

// ------------------------------------------------- channel observer wiring

TEST(HealthChannelWiring, ObserverSeesPolicyPathOutcomes) {
  sim::NetworkModel network;
  rpc::Channel channel(network, rpc::SerializationModel{});
  sim::Node client("client", sim::TierKind::kAppServer);
  sim::Node server("server", sim::TierKind::kRemoteCache);
  channel.enableFaults(7);

  core::HealthMonitor monitor(testPolicy());
  monitor.registerNode(server, sim::TierKind::kRemoteCache, 0);
  channel.setCallObserver(&monitor);

  // A dead server: every policy call is a failure the monitor counts,
  // and after enough of them the node is ejected.
  server.setUp(false);
  for (int c = 0; c < 6; ++c) {
    channel.callWithPolicy(client, server, 128, 1024, rpc::CallPolicy{});
  }
  EXPECT_TRUE(monitor.ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_EQ(monitor.totalEjections(), 1u);
}

// ------------------------------------------------- deployment-level loops

workload::SyntheticConfig smallWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 2000;
  config.valueSize = 1024;
  config.readRatio = 0.95;
  return config;
}

std::uint64_t drive(core::Deployment& deployment,
                    workload::SyntheticWorkload& workload, std::uint64_t ops,
                    std::uint64_t startMicros) {
  constexpr std::uint64_t kMicrosPerOp = 10;
  for (std::uint64_t i = 0; i < ops; ++i) {
    deployment.setSimTimeMicros(startMicros + i * kMicrosPerOp);
    deployment.serve(workload.next());
  }
  return startMicros + ops * kMicrosPerOp;
}

core::DeploymentConfig grayConfig(core::Architecture arch) {
  core::DeploymentConfig config;
  config.architecture = arch;
  config.health.enabled = true;
  return config;
}

TEST(DeploymentHealth, DisabledByDefaultAndOffMeansNoMonitor) {
  core::DeploymentConfig config;
  EXPECT_FALSE(config.health.enabled);
  EXPECT_EQ(config.cacheReplicationFactor, 1u);
  core::Deployment deployment(config);
  EXPECT_EQ(deployment.healthMonitor(), nullptr);
  EXPECT_FALSE(deployment.replicationInstalled());
}

TEST(DeploymentHealth, FlakyNodeGetsEjectedAndCounted) {
  core::DeploymentConfig config = grayConfig(core::Architecture::kRemote);
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 6000, 0);
  sim::FaultSchedule schedule;
  // Drop every leg: calls to the pod fail deterministically, so ejection
  // needs no luck. The node itself stays "up" — a gray failure.
  schedule.flakyNode(now, now + 400000, sim::TierKind::kRemoteCache, 0, 1.0);
  deployment.installFaultSchedule(std::move(schedule));
  deployment.clearMeters();
  now = drive(deployment, workload, 8000, now);

  ASSERT_NE(deployment.healthMonitor(), nullptr);
  EXPECT_GE(deployment.healthMonitor()->totalEjections(), 1u);
  EXPECT_TRUE(
      deployment.healthMonitor()->ejected(sim::TierKind::kRemoteCache, 0));
  EXPECT_TRUE(deployment.remoteCache()->nodeUp(0));  // up, just lossy
  const core::ServeCounters& counters = deployment.counters();
  EXPECT_GE(counters.ejectedNodes, 1u);
  // Detection lag is measured from the fault's onset to the ejection.
  EXPECT_GT(counters.detectionLagMicros, 0.0);
}

TEST(DeploymentHealth, ReplicaFallbackKeepsServingTheEjectedPodsKeys) {
  core::DeploymentConfig config = grayConfig(core::Architecture::kRemote);
  config.cacheReplicationFactor = 2;
  core::Deployment deployment(config);
  ASSERT_TRUE(deployment.replicationInstalled());
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 8000, 0);
  // Fan-out writes populate both replicas from the start.
  EXPECT_GT(deployment.counters().replicaWriteFanout, 0u);

  sim::FaultSchedule schedule;
  schedule.flakyNode(now, now + 800000, sim::TierKind::kRemoteCache, 0, 1.0);
  deployment.installFaultSchedule(std::move(schedule));
  deployment.clearMeters();
  now = drive(deployment, workload, 8000, now);

  const core::ServeCounters& counters = deployment.counters();
  // Once the pod is ejected its keys are served by the next replica —
  // hits, not storage degradations.
  EXPECT_GT(counters.replicaFallbackReads, 0u);
  EXPECT_GT(counters.hitRatio(), 0.5);
}

TEST(DeploymentHealth, LinkedSlowNodeIsRoutedAroundViaReplicas) {
  core::DeploymentConfig config = grayConfig(core::Architecture::kLinked);
  config.cacheReplicationFactor = 2;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 8000, 0);
  sim::FaultSchedule schedule;
  schedule.slowNode(now, now + 800000, sim::TierKind::kAppServer, 0, 50.0);
  deployment.installFaultSchedule(std::move(schedule));
  deployment.clearMeters();
  now = drive(deployment, workload, 12000, now);

  ASSERT_NE(deployment.healthMonitor(), nullptr);
  EXPECT_DOUBLE_EQ(deployment.appTier().node(0).slowFactor(), 50.0);
  EXPECT_GE(deployment.healthMonitor()->totalEjections(), 1u);
  EXPECT_GT(deployment.counters().replicaFallbackReads, 0u);

  // The window closes: the node recovers its speed and, after clean
  // probes, its traffic.
  deployment.setSimTimeMicros(now + 800000);
  EXPECT_DOUBLE_EQ(deployment.appTier().node(0).slowFactor(), 1.0);
}

TEST(DeploymentHealth, GrayTimelineReplaysByteForByte) {
  auto run = [] {
    core::DeploymentConfig config = grayConfig(core::Architecture::kRemote);
    config.cacheReplicationFactor = 2;
    core::Deployment deployment(config);
    workload::SyntheticWorkload workload{smallWorkload()};
    deployment.populateKv(workload);
    std::uint64_t now = drive(deployment, workload, 4000, 0);
    sim::FaultSchedule schedule;
    schedule.slowNode(now, now + 200000, sim::TierKind::kRemoteCache, 0,
                      10.0);
    schedule.flakyNode(now + 100000, now + 300000,
                       sim::TierKind::kRemoteCache, 1, 0.5);
    schedule.partialPartition(now + 150000, now + 250000,
                              sim::TierKind::kAppServer,
                              sim::TierKind::kRemoteCache);
    deployment.installFaultSchedule(std::move(schedule));
    drive(deployment, workload, 10000, now);
    return deployment.counters();
  };
  const core::ServeCounters a = run();
  const core::ServeCounters b = run();
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.ejectedNodes, b.ejectedNodes);
  EXPECT_EQ(a.replicaFallbackReads, b.replicaFallbackReads);
  EXPECT_EQ(a.staleReplicaReads, b.staleReplicaReads);
  EXPECT_EQ(a.replicaWriteFanout, b.replicaWriteFanout);
  EXPECT_EQ(a.failedCalls, b.failedCalls);
  EXPECT_EQ(a.degradedReads, b.degradedReads);
  EXPECT_DOUBLE_EQ(a.detectionLagMicros, b.detectionLagMicros);
  EXPECT_DOUBLE_EQ(a.wastedCpuMicros, b.wastedCpuMicros);
}

TEST(DeploymentHealth, PartialPartitionIsAsymmetric) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kRemote;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 4000, 0);
  deployment.clearMeters();
  const std::uint64_t degradedBefore = deployment.counters().degradedReads;

  sim::FaultSchedule schedule;
  schedule.partialPartition(now, now + 100000, sim::TierKind::kAppServer,
                            sim::TierKind::kRemoteCache);
  deployment.installFaultSchedule(std::move(schedule));
  now = drive(deployment, workload, 2000, now);
  // Requests toward the cache are lost: reads degrade to storage.
  EXPECT_GT(deployment.counters().degradedReads, degradedBefore);

  // The cut heals; the caches were unreachable, not dead.
  deployment.setSimTimeMicros(now + 200000);
  deployment.clearMeters();
  drive(deployment, workload, 3000, now + 200000);
  EXPECT_GT(deployment.counters().hitRatio(), 0.5);
}

}  // namespace
}  // namespace dcache
