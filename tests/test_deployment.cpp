// Integration tests: full deployments of all four architectures serving
// real workload streams — hit ratios, cost ordering, component charging,
// version-check behaviour and the rich-object serving mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/deployment.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workload/synthetic.hpp"
#include "workload/uc_trace.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] DeploymentConfig smallDeployment(Architecture arch) {
  DeploymentConfig config;
  config.architecture = arch;
  config.appCachePerNode = util::Bytes::mb(64);
  config.remoteCachePerNode = util::Bytes::mb(64);
  config.blockCachePerNode = util::Bytes::mb(64);
  return config;
}

[[nodiscard]] workload::SyntheticConfig smallWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 2000;
  config.valueSize = 1024;
  config.readRatio = 0.9;
  return config;
}

TEST(Deployment, LinkedHitsAfterWarmup) {
  Deployment deployment(smallDeployment(Architecture::kLinked));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 20000; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().hitRatio(), 0.8);
  EXPECT_GT(deployment.counters().reads, 0u);
  EXPECT_GT(deployment.counters().writes, 0u);
}

TEST(Deployment, BaseNeverUsesAppCache) {
  Deployment deployment(smallDeployment(Architecture::kBase));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 2000; ++i) deployment.serve(workload.next());
  EXPECT_EQ(deployment.counters().cacheHits, 0u);
  EXPECT_EQ(deployment.linkedCache(), nullptr);
  EXPECT_EQ(deployment.remoteCache(), nullptr);
}

TEST(Deployment, RemoteTierOnlyExistsForRemote) {
  Deployment remote(smallDeployment(Architecture::kRemote));
  EXPECT_NE(remote.remoteCache(), nullptr);
  EXPECT_EQ(remote.tiers().size(), 5u);  // client, app, remote, sql, kv
  Deployment linked(smallDeployment(Architecture::kLinked));
  EXPECT_EQ(linked.tiers().size(), 4u);
  EXPECT_NE(linked.linkedCache(), nullptr);
}

TEST(Deployment, VersionChecksHappenOnlyInLinkedVersion) {
  for (const Architecture arch : kAllArchitectures) {
    Deployment deployment(smallDeployment(arch));
    workload::SyntheticWorkload workload(smallWorkload());
    deployment.populateKv(workload);
    for (int i = 0; i < 5000; ++i) deployment.serve(workload.next());
    if (arch == Architecture::kLinkedVersion) {
      EXPECT_GT(deployment.counters().versionChecks, 0u);
    } else {
      EXPECT_EQ(deployment.counters().versionChecks, 0u);
    }
  }
}

TEST(Deployment, WriteThenReadIsConsistentUnderVersionCheck) {
  // With write-through updates the cached version matches storage, so
  // version checks pass; disable write-through and they must miss.
  DeploymentConfig config = smallDeployment(Architecture::kLinkedVersion);
  config.writeThroughCache = false;  // invalidate on write
  Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 20000; ++i) deployment.serve(workload.next());
  // Invalidation-on-write means reads after writes miss but never serve a
  // stale version: mismatches only happen when a cached version raced a
  // write, which write-invalidate prevents entirely.
  EXPECT_EQ(deployment.counters().versionMismatches, 0u);
  EXPECT_GT(deployment.counters().versionChecks, 0u);
}

TEST(Deployment, WriteThroughKeepsVersionsFresh) {
  Deployment deployment(smallDeployment(Architecture::kLinkedVersion));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 20000; ++i) deployment.serve(workload.next());
  // Write-through updates carry the storage version, so checks pass.
  EXPECT_EQ(deployment.counters().versionMismatches, 0u);
  EXPECT_GT(deployment.counters().hitRatio(), 0.8);
}

TEST(Deployment, ComponentChargingMatchesArchitecture) {
  // Linked: app servers must show cache ops but the remote tier does not
  // exist; Base: neither.
  Deployment linked(smallDeployment(Architecture::kLinked));
  workload::SyntheticWorkload workload(smallWorkload());
  linked.populateKv(workload);
  for (int i = 0; i < 5000; ++i) linked.serve(workload.next());
  EXPECT_GT(linked.appTier().aggregateCpu().micros(
                sim::CpuComponent::kCacheOp),
            0.0);
  EXPECT_GT(linked.appTier().aggregateCpu().micros(
                sim::CpuComponent::kClientComm),
            0.0);

  Deployment base(smallDeployment(Architecture::kBase));
  workload::SyntheticWorkload workload2(smallWorkload());
  base.populateKv(workload2);
  for (int i = 0; i < 5000; ++i) base.serve(workload2.next());
  EXPECT_DOUBLE_EQ(
      base.appTier().aggregateCpu().micros(sim::CpuComponent::kCacheOp), 0.0);
}

TEST(Deployment, ClearMetersResetsEverything) {
  Deployment deployment(smallDeployment(Architecture::kLinked));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 1000; ++i) deployment.serve(workload.next());
  deployment.clearMeters();
  EXPECT_EQ(deployment.counters().reads, 0u);
  EXPECT_DOUBLE_EQ(deployment.appTier().aggregateCpu().totalMicros(), 0.0);
  EXPECT_EQ(deployment.latencies().count(), 0u);
  // The cache contents survive (only the meters reset).
  const workload::Op op = workload.next();
  deployment.serve(op);
  EXPECT_EQ(deployment.counters().reads + deployment.counters().writes, 1u);
}

TEST(Deployment, CostOrderingOnSkewedReadHeavyWorkload) {
  // The paper's headline: Linked < Remote < Base in total cost on a skewed
  // read-heavy workload; Linked+Version erases most of Linked's advantage.
  ExperimentConfig experiment;
  experiment.operations = 30000;
  experiment.warmupOperations = 30000;
  experiment.qps = 50000;

  std::map<Architecture, ExperimentResult> results;
  for (const Architecture arch : kAllArchitectures) {
    workload::SyntheticWorkload workload(smallWorkload());
    results.emplace(arch, runArchitecture(arch, workload,
                                          smallDeployment(arch), experiment));
  }
  const auto total = [&](Architecture arch) {
    return results.at(arch).cost.totalCost.dollars();
  };
  EXPECT_LT(total(Architecture::kLinked), total(Architecture::kRemote));
  EXPECT_LT(total(Architecture::kRemote), total(Architecture::kBase));
  EXPECT_GT(total(Architecture::kLinkedVersion),
            total(Architecture::kLinked) * 1.5);
}

TEST(Deployment, ObjectModeServesRichObjects) {
  workload::UcTraceConfig traceConfig;
  traceConfig.numTables = 300;
  workload::UcTraceWorkload trace(traceConfig);

  DeploymentConfig config = smallDeployment(Architecture::kLinked);
  Deployment deployment(config);
  deployment.populateCatalog(trace);
  ASSERT_NE(deployment.catalogStore(), nullptr);

  for (int i = 0; i < 5000; ++i) deployment.serveObject(trace.next());
  EXPECT_GT(deployment.counters().hitRatio(), 0.5);
  EXPECT_GT(deployment.counters().statementsIssued, 0u);
  // Query amplification: on average more than one statement per miss.
  EXPECT_GT(deployment.counters().statementsIssued,
            deployment.counters().cacheMisses);
}

TEST(Deployment, ObjectModeBaseAmplifiesQueries) {
  workload::UcTraceConfig traceConfig;
  traceConfig.numTables = 200;
  traceConfig.readRatio = 1.0;
  workload::UcTraceWorkload trace(traceConfig);

  Deployment deployment(smallDeployment(Architecture::kBase));
  deployment.populateCatalog(trace);
  for (int i = 0; i < 1000; ++i) deployment.serveObject(trace.next());
  // Base assembles every read: statements per read between 1 and 8.
  const double perRead =
      static_cast<double>(deployment.counters().statementsIssued) /
      static_cast<double>(deployment.counters().reads);
  EXPECT_GT(perRead, 2.0);
  EXPECT_LE(perRead, 8.0);
}

TEST(Deployment, TtlBookkeepingTracksCacheOccupancyNotKeyspace) {
  DeploymentConfig config = smallDeployment(Architecture::kLinked);
  config.appCachePerNode = util::Bytes::mb(1);  // ~1K entries per shard
  config.ttlFreshnessMicros = 50'000;
  Deployment deployment(config);

  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 50000;
  workloadConfig.valueSize = 1024;
  workloadConfig.readRatio = 0.9;
  workloadConfig.alpha = 0.8;  // flat popularity: heavy eviction churn
  workload::SyntheticWorkload workload(workloadConfig);
  deployment.populateKv(workload);

  for (int i = 0; i < 60000; ++i) {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(i) * 10);
    deployment.serve(workload.next());
  }

  // The fill-time map must track what the cache holds, not every key the
  // workload ever touched (~tens of thousands here): evicted keys' entries
  // are swept once the map outgrows occupancy 2x.
  const std::size_t items = deployment.linkedCache()->itemCount();
  EXPECT_GT(deployment.counters().cacheMisses, 10000u);  // real churn
  EXPECT_LE(deployment.ttlBookkeepingSize(),
            std::max<std::size_t>(1024, 2 * items) + 1);
}

TEST(Deployment, TotalCacheMemoryProvisioned) {
  DeploymentConfig config = smallDeployment(Architecture::kLinked);
  Deployment deployment(config);
  // 3 app shards × 64 MB + 3 block caches × 64 MB.
  EXPECT_EQ(deployment.totalCacheMemoryProvisioned().count(),
            util::Bytes::mb(64 * 6).count());
}

}  // namespace
}  // namespace dcache::core
