// The memory-disaggregated architecture's lockdown suite: exact byte
// accounting of one-sided reads, the hot-cache/far-pool interaction (an
// in-process hit must never touch the fabric), DiFache-style decentralized
// invalidation correctness (the writer's fan-out reaches every cached
// copy; no stale hot copy survives an epoch fence), and fault interplay
// (far-pool crash degrades to storage, a gray-slow pool node gets ejected
// and routed around by the health monitor).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cache/disagg_cache.hpp"
#include "core/deployment.hpp"
#include "rpc/channel.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/tier.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace dcache {
namespace {

// ---- one-sided read byte accounting (channel level) ----

TEST(OneSidedRead, PerBytePriceTimesBytesChargedExactly) {
  sim::NetworkModel network;
  rpc::Channel channel(network, rpc::SerializationModel{});
  sim::Node initiator("app", sim::TierKind::kAppServer);
  sim::Node target("far", sim::TierKind::kFarMemory);

  // Zero out the fixed parts so the charge IS bytes x per-byte price —
  // the contract must hold bit-exactly, not approximately.
  rpc::OneSidedParams params;
  params.issueMicros = 0.0;
  params.completionMicros = 0.0;
  params.targetTouchMicros = 0.0;
  params.perByteCpuMicros = 0.0002;
  const std::uint64_t bytes = 123457;
  const auto result = channel.oneSidedRead(initiator, target, bytes, params);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.responseBytes, bytes);
  EXPECT_EQ(initiator.cpu().micros(sim::CpuComponent::kFarMemAccess),
            params.perByteCpuMicros * static_cast<double>(bytes));
  EXPECT_EQ(target.cpu().micros(sim::CpuComponent::kFarMemAccess), 0.0);
}

TEST(OneSidedRead, DefaultShapeChargesInitiatorThreePartsTargetNearZero) {
  sim::NetworkModel network;
  rpc::Channel channel(network, rpc::SerializationModel{});
  sim::Node initiator("app", sim::TierKind::kAppServer);
  sim::Node target("far", sim::TierKind::kFarMemory);

  const rpc::OneSidedParams params;
  const std::uint64_t bytes = 4096;
  channel.oneSidedRead(initiator, target, bytes, params);
  // Accumulate in the same order the channel charges (issue, per-byte,
  // completion) so the comparison is exact under floating point.
  double expected = 0.0;
  expected += params.issueMicros;
  expected += params.perByteCpuMicros * static_cast<double>(bytes);
  expected += params.completionMicros;
  EXPECT_EQ(initiator.cpu().micros(sim::CpuComponent::kFarMemAccess),
            expected);
  EXPECT_EQ(target.cpu().micros(sim::CpuComponent::kFarMemAccess),
            params.targetTouchMicros);
  // The defining asymmetry: the pool's CPU cost per access is orders of
  // magnitude below the initiator's.
  EXPECT_LT(params.targetTouchMicros, 0.1 * expected);
  // No marshalling components anywhere — one-sided means no RPC stack.
  EXPECT_EQ(initiator.cpu().micros(sim::CpuComponent::kSerialization), 0.0);
  EXPECT_EQ(target.cpu().micros(sim::CpuComponent::kDeserialization), 0.0);
  EXPECT_EQ(target.cpu().micros(sim::CpuComponent::kRpcFraming), 0.0);
}

// ---- DisaggCache wire accounting ----

class DisaggCacheTest : public ::testing::Test {
 protected:
  DisaggCacheTest()
      : farTier_("far-memory", sim::TierKind::kFarMemory, 3),
        appTier_("app", sim::TierKind::kAppServer, 2),
        channel_(network_, rpc::SerializationModel{}),
        cache_(farTier_, util::Bytes::mb(4), appTier_, util::Bytes::kb(64),
               channel_) {}

  sim::NetworkModel network_;
  sim::Tier farTier_;
  sim::Tier appTier_;
  rpc::Channel channel_;
  cache::DisaggCache cache_;
};

TEST_F(DisaggCacheTest, WireBytesAreHeaderPlusValueOnHitHeaderOnMiss) {
  sim::Node& app = appTier_.node(0);
  const std::string key = "wire-key";
  const std::uint64_t size = 1000;

  const auto miss = cache_.farGet(app, key);
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.failed);
  EXPECT_EQ(miss.wireBytes, cache::kFarSlotHeaderBytes);

  cache_.farPut(app, key, size, /*version=*/7);
  const auto hit = cache_.farGet(app, key);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.size, size);
  EXPECT_EQ(hit.version, 7u);
  EXPECT_EQ(hit.wireBytes, cache::kFarSlotHeaderBytes + size);
}

TEST_F(DisaggCacheTest, HotHitChargesNoFarAccessCpu) {
  sim::Node& app = appTier_.node(0);
  cache_.hotFill(0, "hot-key", 500, 1);
  const double farCpuBefore =
      app.cpu().micros(sim::CpuComponent::kFarMemAccess);
  const auto hot = cache_.hotGet(0, "hot-key");
  EXPECT_TRUE(hot.hit);
  EXPECT_EQ(hot.size, 500u);
  EXPECT_EQ(app.cpu().micros(sim::CpuComponent::kFarMemAccess),
            farCpuBefore);
  for (std::size_t i = 0; i < farTier_.size(); ++i) {
    EXPECT_EQ(farTier_.node(i).cpu().totalMicros(), 0.0) << "pool node " << i;
  }
  // The hot cache is per app server: node 1 does not share node 0's copy.
  EXPECT_FALSE(cache_.hotGet(1, "hot-key").hit);
}

// ---- Deployment serve path ----

[[nodiscard]] core::DeploymentConfig disaggDeployment() {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kDisaggregated;
  config.farMemoryPerNode = util::Bytes::mb(64);
  config.hotCachePerNode = util::Bytes::mb(8);
  return config;
}

[[nodiscard]] workload::SyntheticConfig smallWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 2000;
  config.valueSize = 1024;
  config.readRatio = 0.9;
  return config;
}

[[nodiscard]] workload::Op readOp(std::uint64_t keyIndex,
                                  std::uint64_t size) {
  return workload::Op{workload::OpType::kRead, keyIndex, size};
}

[[nodiscard]] workload::Op writeOp(std::uint64_t keyIndex,
                                   std::uint64_t size) {
  return workload::Op{workload::OpType::kWrite, keyIndex, size};
}

TEST(DisaggDeployment, TiersAndWiringExistOnlyForDisaggregated) {
  core::Deployment disagg(disaggDeployment());
  EXPECT_NE(disagg.disaggCache(), nullptr);
  EXPECT_NE(disagg.invalidationBus(), nullptr);
  // client, app, far-memory, sql, kv — and one bus subscriber per server.
  EXPECT_EQ(disagg.tiers().size(), 5u);
  EXPECT_EQ(disagg.invalidationBus()->subscriberCount(),
            disagg.appTier().size());

  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kRemote,
        core::Architecture::kLinked, core::Architecture::kLinkedVersion}) {
    core::DeploymentConfig config;
    config.architecture = arch;
    core::Deployment other(config);
    EXPECT_EQ(other.disaggCache(), nullptr);
    EXPECT_EQ(other.invalidationBus(), nullptr);
  }
}

TEST(DisaggDeployment, HotHitNeverTouchesFarMemory) {
  core::Deployment deployment(disaggDeployment());
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);

  // Round-robin sends consecutive ops to app 0, 1, 2; the fourth read of
  // the same key re-lands on app 0, whose hot cache now holds it.
  const std::uint64_t keyIndex = 42;
  const std::string key = workload::keyName(keyIndex);
  const std::uint64_t size = workload.valueSizeFor(keyIndex);
  deployment.serve(readOp(keyIndex, size));  // app0: far miss, storage fill
  deployment.serve(readOp(keyIndex, size));  // app1: far hit, hot fill
  deployment.serve(readOp(keyIndex, size));  // app2: far hit, hot fill
  const core::ServeCounters& mid = deployment.counters();
  EXPECT_EQ(mid.farMemoryReads, 3u);
  EXPECT_EQ(mid.cacheHits, 2u);
  EXPECT_EQ(mid.hotCacheHits, 0u);
  EXPECT_EQ(mid.cacheMisses, 1u);
  EXPECT_EQ(mid.storageReads, 1u);
  // Exact wire accounting: the miss pulled only the slot header, each hit
  // pulled header + value.
  EXPECT_EQ(mid.farMemoryBytes,
            3 * cache::kFarSlotHeaderBytes + 2 * size);

  const auto result = deployment.serve(readOp(keyIndex, size));  // app0: hot
  EXPECT_TRUE(result.cacheHit);
  const core::ServeCounters& after = deployment.counters();
  EXPECT_EQ(after.hotCacheHits, 1u);
  EXPECT_EQ(after.farMemoryReads, 3u);  // unchanged: never touched the pool
  EXPECT_EQ(after.farMemoryBytes, mid.farMemoryBytes);
  EXPECT_EQ(after.cacheHits, 3u);
}

TEST(DisaggDeployment, WriterInvalidationReachesEveryCachedCopy) {
  core::Deployment deployment(disaggDeployment());
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  cache::DisaggCache& cache = *deployment.disaggCache();

  const std::uint64_t keyIndex = 7;
  const std::string key = workload::keyName(keyIndex);
  const std::uint64_t size = workload.valueSizeFor(keyIndex);
  // Prime every app server's hot cache (apps 0, 1, 2 in rr order).
  for (int i = 0; i < 3; ++i) deployment.serve(readOp(keyIndex, size));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_NE(cache.hotShardForNode(i).peek(key), nullptr) << "app " << i;
  }

  // The write lands on app 0 (rr continues); it refreshes the far slot and
  // its own copy and fans the invalidation to apps 1 and 2 itself.
  deployment.serve(writeOp(keyIndex, size));
  EXPECT_EQ(deployment.counters().clientInvalidations, 2u);
  EXPECT_EQ(deployment.invalidationBus()->published(), 1u);

  const cache::CacheEntry* writer = cache.hotShardForNode(0).peek(key);
  ASSERT_NE(writer, nullptr);
  EXPECT_EQ(cache.hotShardForNode(1).peek(key), nullptr);
  EXPECT_EQ(cache.hotShardForNode(2).peek(key), nullptr);
  // Far slot and the writer's hot copy agree on the new version — the
  // copies that could have gone stale are gone instead.
  const cache::CacheEntry* far =
      cache.farShardForNode(cache.nodeForKey(key)).peek(key);
  ASSERT_NE(far, nullptr);
  EXPECT_EQ(far->version, writer->version);

  // Re-reads re-pull from the far pool and converge on the new version:
  // a stale hit is impossible.
  for (int i = 0; i < 3; ++i) deployment.serve(readOp(keyIndex, size));
  for (std::size_t i = 0; i < 3; ++i) {
    const cache::CacheEntry* hot = cache.hotShardForNode(i).peek(key);
    ASSERT_NE(hot, nullptr) << "app " << i;
    EXPECT_EQ(hot->version, far->version) << "app " << i;
  }
}

TEST(DisaggDeployment, PoolCrashFencesEpochAndFallsBackToStorage) {
  core::DeploymentConfig config = disaggDeployment();
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  cache::DisaggCache& cache = *deployment.disaggCache();

  const std::uint64_t keyIndex = 11;
  const std::string key = workload::keyName(keyIndex);
  const std::uint64_t size = workload.valueSizeFor(keyIndex);
  const std::size_t farIdx = cache.nodeForKey(key);

  for (int i = 0; i < 3; ++i) deployment.serve(readOp(keyIndex, size));
  const std::uint64_t epochBefore = deployment.ownershipEpoch();

  sim::FaultSchedule faults;
  faults.crashNode(1000, sim::TierKind::kFarMemory, farIdx);
  deployment.installFaultSchedule(std::move(faults));
  deployment.setSimTimeMicros(2000);  // the crash fires here

  // Epoch fence: membership changed, every hot copy is dropped at once so
  // client-driven placement cannot read a slot that moved or died.
  EXPECT_EQ(deployment.ownershipEpoch(), epochBefore + 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.hotShardForNode(i).peek(key), nullptr) << "app " << i;
  }

  // Reads for the dead node's keys degrade to storage — no far access is
  // even attempted, so no retry budget burns on a known-dead pool node.
  const core::ServeCounters before = deployment.counters();
  const auto result = deployment.serve(readOp(keyIndex, size));
  const core::ServeCounters& after = deployment.counters();
  EXPECT_FALSE(result.cacheHit);
  EXPECT_EQ(after.farMemoryReads, before.farMemoryReads);
  EXPECT_EQ(after.degradedReads, before.degradedReads + 1);
  EXPECT_EQ(after.storageReads, before.storageReads + 1);
  EXPECT_EQ(after.failedOps, before.failedOps);  // served, just degraded
}

TEST(DisaggDeployment, GraySlowPoolNodeIsEjectedAndRoutedAround) {
  core::DeploymentConfig config = disaggDeployment();
  config.health.enabled = true;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);

  constexpr double kMicrosPerOp = 1e6 / 120000.0;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        kMicrosPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (int i = 0; i < 4000; ++i) serveOne();

  // Node 0 of the pool turns gray: answers, 20x slower, for the rest of
  // the run. The health monitor must notice from the one-sided reads'
  // latency feed alone and eject it.
  sim::FaultSchedule faults;
  faults.slowNode(static_cast<std::uint64_t>(kMicrosPerOp * 4000.0),
                  static_cast<std::uint64_t>(kMicrosPerOp * 40000.0),
                  sim::TierKind::kFarMemory, 0, 20.0);
  deployment.installFaultSchedule(std::move(faults));
  for (int i = 0; i < 12000; ++i) serveOne();

  const core::ServeCounters& c = deployment.counters();
  EXPECT_GE(c.ejectedNodes, 1u) << "gray far-memory node was never ejected";
  EXPECT_GT(c.detectionLagMicros, 0.0);

  // Ejected != failed: ops for the slow node's keys degrade to storage
  // while the other pool nodes keep serving one-sided reads.
  const std::uint64_t farReadsAtEjection = c.farMemoryReads;
  for (int i = 0; i < 2000; ++i) serveOne();
  EXPECT_GT(deployment.counters().farMemoryReads, farReadsAtEjection);
  EXPECT_GT(deployment.counters().degradedReads, 0u);
}

TEST(DisaggDeployment, HitsAfterWarmupAndProvisionedMemoryCoversBothLayers) {
  core::DeploymentConfig config = disaggDeployment();
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 20000; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().hitRatio(), 0.8);
  EXPECT_GT(deployment.counters().hotCacheHits, 0u);
  EXPECT_LE(deployment.counters().hotCacheHits,
            deployment.counters().cacheHits);
  EXPECT_LE(deployment.counters().farMemoryReads,
            deployment.counters().reads);

  // Cache memory = far pool + every app server's hot front (plus the
  // storage block caches every architecture carries).
  const util::Bytes expected = config.farMemoryPerNode * 3.0 +
                               config.hotCachePerNode * 3.0 +
                               config.blockCachePerNode * 3.0;
  EXPECT_EQ(deployment.totalCacheMemoryProvisioned().count(),
            expected.count());
}

}  // namespace
}  // namespace dcache
