// Workload generator tests: Zipf law recovery, permutation bijectivity,
// size distribution targets, per-key determinism, and trace IO round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "util/stats.hpp"
#include "workload/meta_trace.hpp"
#include "workload/size_dist.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"
#include "workload/twitter_trace.hpp"
#include "workload/uc_trace.hpp"
#include "workload/zipf.hpp"

namespace dcache::workload {
namespace {

TEST(Zipf, RanksInRange) {
  ZipfianGenerator zipf(1000, 1.2);
  util::Pcg32 rng(1, 1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t rank = zipf.nextRank(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 1000u);
  }
}

/// Empirical rank frequencies must follow k^-alpha (checked for the head
/// ranks where counts are statistically solid), across alphas incl. 1.0.
class ZipfLaw : public ::testing::TestWithParam<double> {};

TEST_P(ZipfLaw, HeadFrequenciesMatchAnalytic) {
  const double alpha = GetParam();
  constexpr std::uint64_t kKeys = 10000;
  constexpr int kDraws = 400000;
  ZipfianGenerator zipf(kKeys, alpha);
  util::Pcg32 rng(7, 1);
  std::vector<std::uint64_t> counts(16, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t rank = zipf.nextRank(rng);
    if (rank <= 15) ++counts[rank];
  }
  const double h = util::generalizedHarmonic(kKeys, alpha);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const double expected = std::pow(static_cast<double>(k), -alpha) / h;
    const double observed =
        static_cast<double>(counts[k]) / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, expected * 0.1 + 0.001)
        << "alpha=" << alpha << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfLaw,
                         ::testing::Values(0.8, 1.0, 1.2, 1.4));

TEST(Zipf, PermutationIsBijective) {
  ZipfianGenerator zipf(10007, 1.0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t rank = 1; rank <= 10007; ++rank) {
    const std::uint64_t key = zipf.permuteRank(rank);
    EXPECT_LT(key, 10007u);
    EXPECT_TRUE(seen.insert(key).second) << "collision at rank " << rank;
  }
}

TEST(Zipf, PermutationBijectiveForAdversarialSizes) {
  // Composite, power-of-two and highly-divisible key counts: the scramble
  // multiplier must be reduced mod n and coprime to n for a bijection.
  for (const std::uint64_t n : {6ull, 30030ull, 65536ull, 100000ull}) {
    ZipfianGenerator zipf(n, 1.0);
    ASSERT_EQ(std::gcd(zipf.scrambleMultiplier(), n), 1u) << "n " << n;
    std::vector<bool> seen(n, false);
    for (std::uint64_t rank = 1; rank <= n; ++rank) {
      const std::uint64_t key = zipf.permuteRank(rank);
      ASSERT_LT(key, n);
      ASSERT_FALSE(seen[key]) << "collision at rank " << rank << " n " << n;
      seen[key] = true;
    }
  }
}

TEST(Zipf, ScrambleFallsBackWhenKeyCountSharesPrimeFactor) {
  // Key counts that are multiples of the primary scramble prime: the
  // primary multiplier reduces to a non-coprime residue (0 for n == p,
  // collapsing every rank onto key 0), so a fallback must kick in.
  constexpr std::uint64_t kPrime = 2654435761ull;
  for (const std::uint64_t n : {kPrime, 2 * kPrime, 3 * kPrime}) {
    ZipfianGenerator zipf(n, 1.2);
    const std::uint64_t m = zipf.scrambleMultiplier();
    ASSERT_NE(m % n, 0u) << "n " << n;
    ASSERT_EQ(std::gcd(m, n), 1u) << "n " << n;
    std::set<std::uint64_t> keys;
    for (std::uint64_t rank = 1; rank <= 1000; ++rank) {
      keys.insert(zipf.permuteRank(rank));
    }
    EXPECT_EQ(keys.size(), 1000u) << "n " << n;  // no collapse
  }
}

TEST(Zipf, PermutationSurvivesUint64Overflow) {
  // For key counts past ~2^64 / multiplier the product (rank-1) * m no
  // longer fits in 64 bits. A wrapped product breaks the modular step
  // property f(r+1) = f(r) + m (mod n); check it at ranks on both sides
  // of the overflow threshold. n is odd, so a 2^64 wrap never aliases.
  constexpr std::uint64_t kN = 8000000011ull;
  ZipfianGenerator zipf(kN, 1.0);
  const std::uint64_t m = zipf.scrambleMultiplier();
  ASSERT_EQ(std::gcd(m, kN), 1u);
  for (const std::uint64_t rank : {std::uint64_t{1}, std::uint64_t{2654435761},
                                   std::uint64_t{6950000000}, kN - 1}) {
    const std::uint64_t a = zipf.permuteRank(rank);
    const std::uint64_t b = zipf.permuteRank(rank + 1);
    ASSERT_LT(a, kN);
    EXPECT_EQ((a + m) % kN, b) << "rank " << rank;
  }
}

TEST(Zipf, DeterministicGivenRngState) {
  ZipfianGenerator zipf(100, 1.1);
  util::Pcg32 a(5, 1);
  util::Pcg32 b(5, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.nextRank(a), zipf.nextRank(b));
  }
}

TEST(SizeDist, FixedIsFixed) {
  const FixedSize dist(4096);
  util::Pcg32 rng(1, 1);
  EXPECT_EQ(dist.sample(rng), 4096u);
  EXPECT_EQ(dist.sizeForKey(7), 4096u);
}

TEST(SizeDist, LogNormalMedianNearTarget) {
  const LogNormalSize dist(10.0, 1.4, 1, 16384);
  util::Pcg32 rng(2, 1);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) {
    sample.push_back(static_cast<double>(dist.sample(rng)));
  }
  EXPECT_NEAR(util::exactQuantile(sample, 0.5), 10.0, 2.0);
}

TEST(SizeDist, ClampsRespected) {
  const LogNormalSize dist(100.0, 3.0, 50, 200);
  util::Pcg32 rng(3, 1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t s = dist.sample(rng);
    EXPECT_GE(s, 50u);
    EXPECT_LE(s, 200u);
  }
}

TEST(SizeDist, ParetoTailProducesLargeObjects) {
  const LogNormalParetoTailSize dist(23.0 * 1024, 1.1, 0.02, 256.0 * 1024,
                                     1.1, 8ULL << 20);
  util::Pcg32 rng(4, 1);
  std::uint64_t maxSeen = 0;
  for (int i = 0; i < 50000; ++i) maxSeen = std::max(maxSeen, dist.sample(rng));
  EXPECT_GT(maxSeen, 1ULL << 20);  // MB-scale tail objects exist (Fig. 3a)
}

TEST(SizeDist, PerKeySizeIsDeterministic) {
  const LogNormalSize dist(100.0, 1.0);
  EXPECT_EQ(dist.sizeForKey(42), dist.sizeForKey(42));
  // Different keys draw different sizes (overwhelmingly).
  int distinct = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    distinct += dist.sizeForKey(k) != dist.sizeForKey(k + 1) ? 1 : 0;
  }
  EXPECT_GT(distinct, 90);
}

TEST(Synthetic, ReadRatioNearTarget) {
  SyntheticConfig config;
  config.readRatio = 0.93;
  SyntheticWorkload workload(config);
  int reads = 0;
  constexpr int kOps = 50000;
  for (int i = 0; i < kOps; ++i) reads += workload.next().isRead() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(reads) / kOps, 0.93, 0.01);
}

TEST(Synthetic, DeterministicBySeed) {
  SyntheticConfig config;
  SyntheticWorkload a(config);
  SyntheticWorkload b(config);
  for (int i = 0; i < 1000; ++i) {
    const Op opA = a.next();
    const Op opB = b.next();
    EXPECT_EQ(opA.keyIndex, opB.keyIndex);
    EXPECT_EQ(opA.type, opB.type);
  }
}

TEST(Synthetic, KeysInRangeAndSkewed) {
  SyntheticConfig config;
  config.numKeys = 1000;
  SyntheticWorkload workload(config);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    const Op op = workload.next();
    ASSERT_LT(op.keyIndex, 1000u);
    ++counts[op.keyIndex];
  }
  // Top key should take a large share under alpha=1.2.
  int top = 0;
  for (const auto& [k, c] : counts) top = std::max(top, c);
  EXPECT_GT(top, 50000 / 20);
}

TEST(MetaTrace, MatchesPublishedShape) {
  MetaTraceConfig config;
  MetaTraceWorkload workload(config);
  int reads = 0;
  std::vector<double> sizes;
  for (int i = 0; i < 50000; ++i) {
    const Op op = workload.next();
    reads += op.isRead() ? 1 : 0;
    sizes.push_back(static_cast<double>(op.valueSize));
  }
  EXPECT_NEAR(reads / 50000.0, 0.70, 0.01);             // 30% writes
  EXPECT_LT(util::exactQuantile(sizes, 0.5), 40.0);     // ~10B median
  EXPECT_GE(util::exactQuantile(sizes, 0.5), 2.0);
}

TEST(MetaTrace, ReplayModeFollowsRecords) {
  const std::vector<TraceRecord> records = {
      {false, 1, 10}, {true, 2, 20}, {false, 3, 0}};
  MetaTraceConfig config;
  MetaTraceWorkload workload(config, records);
  const Op op1 = workload.next();
  EXPECT_EQ(op1.keyIndex, 1u);
  EXPECT_TRUE(op1.isRead());
  EXPECT_EQ(op1.valueSize, 10u);
  const Op op2 = workload.next();
  EXPECT_FALSE(op2.isRead());
  const Op op3 = workload.next();
  EXPECT_GT(op3.valueSize, 0u);  // 0 size falls back to the distribution
  EXPECT_EQ(workload.next().keyIndex, 1u);  // loops
}

TEST(UcTrace, ShapeMatchesFigure3) {
  UcTraceConfig config;
  UcTraceWorkload workload(config);
  int reads = 0;
  std::vector<double> sizes;
  for (int i = 0; i < 50000; ++i) {
    const Op op = workload.next();
    reads += op.isRead() ? 1 : 0;
    if (op.type == OpType::kObjectRead) {
      sizes.push_back(static_cast<double>(op.valueSize));
    }
  }
  EXPECT_NEAR(reads / 50000.0, 0.93, 0.01);
  const double median = util::exactQuantile(sizes, 0.5);
  EXPECT_NEAR(median, 23.0 * 1024, 8.0 * 1024);  // ≈23KB median
  EXPECT_GT(util::exactQuantile(sizes, 0.999), 500.0 * 1024);  // heavy tail
}

TEST(UcTrace, StatementCountsBetween1And8AndDeterministic) {
  UcTraceConfig config;
  UcTraceWorkload workload(config);
  bool sawEight = false;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    const std::size_t n = workload.statementsFor(t);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 8u);
    EXPECT_EQ(n, workload.statementsFor(t));
    sawEight |= n == 8;
  }
  EXPECT_TRUE(sawEight);  // getTable reaches the paper's 8-query worst case
}

TEST(Twitter, MedianNear230B) {
  TwitterTraceConfig config;
  TwitterTraceWorkload workload(config);
  std::vector<double> sizes;
  for (int i = 0; i < 30000; ++i) {
    sizes.push_back(static_cast<double>(workload.next().valueSize));
  }
  EXPECT_NEAR(util::exactQuantile(sizes, 0.5), 230.0, 60.0);
}

TEST(Workload, MeanValueSizeSane) {
  SyntheticConfig config;
  config.valueSize = 2048;
  SyntheticWorkload workload(config);
  EXPECT_DOUBLE_EQ(workload.meanValueSize(), 2048.0);
}

TEST(TraceIo, CsvRoundtrip) {
  const std::vector<TraceRecord> records = {
      {false, 1, 100}, {true, 999999, 0}, {false, 42, 12345}};
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  ASSERT_TRUE(writeCsvTrace(path, records));
  const auto back = readCsvTrace(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
  std::remove(path.c_str());
}

TEST(TraceIo, BinaryRoundtrip) {
  std::vector<TraceRecord> records;
  util::Pcg32 rng(8, 1);
  for (int i = 0; i < 1000; ++i) {
    records.push_back(TraceRecord{rng.nextBounded(2) == 0, rng.next64() >> 20,
                                  rng.nextBounded(1 << 20)});
  }
  const std::string path = ::testing::TempDir() + "/trace_test.bin";
  ASSERT_TRUE(writeBinaryTrace(path, records));
  const auto back = readBinaryTrace(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsCorruptInput) {
  EXPECT_FALSE(decodeTrace("not a trace").has_value());
  EXPECT_FALSE(decodeTrace("DCTR1\xff").has_value());  // truncated varints
  EXPECT_FALSE(readBinaryTrace("/nonexistent/path").has_value());
  EXPECT_FALSE(readCsvTrace("/nonexistent/path").has_value());
}

TEST(TraceIo, EmptyTraceOk) {
  const std::string encoded = encodeTrace({});
  const auto back = decodeTrace(encoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(KeyName, FixedWidthAndUnique) {
  EXPECT_EQ(keyName(0).size(), keyName(999999999).size());
  EXPECT_NE(keyName(1), keyName(2));
}

}  // namespace
}  // namespace dcache::workload
