// Fault-injection subsystem tests: FaultSchedule ordering and builders, the
// channel's retry/timeout/backoff policy path (including its "retries are a
// cost" accounting), degradation windows, and the deployment-level failure
// semantics — graceful degradation, ring resharding, single-flight miss
// coalescing, and the guarantee that an empty schedule changes nothing.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "rpc/channel.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, EventsSortByTimeWithInsertionOrderBreakingTies) {
  sim::FaultSchedule schedule;
  schedule.crashNode(3000, sim::TierKind::kAppServer, 1);
  schedule.crashNode(1000, sim::TierKind::kAppServer, 0);
  schedule.restartNode(1000, sim::TierKind::kAppServer, 2);

  const auto& events = schedule.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].atMicros, 1000u);
  EXPECT_EQ(events[0].nodeIndex, 0u);  // inserted before the tie
  EXPECT_EQ(events[1].atMicros, 1000u);
  EXPECT_EQ(events[1].nodeIndex, 2u);
  EXPECT_EQ(events[2].atMicros, 3000u);
}

TEST(FaultSchedule, BuildersExpandToPairedEvents) {
  sim::FaultSchedule schedule;
  schedule.crashWindow(100, 500, sim::TierKind::kRemoteCache, 2);
  schedule.tierOutage(200, 400, sim::TierKind::kKvStorage);
  schedule.degradeNetwork(50, 600, 2.5, 0.1);
  ASSERT_EQ(schedule.size(), 6u);

  const auto& events = schedule.events();
  EXPECT_EQ(events[0].kind, sim::FaultKind::kDegradeBegin);
  EXPECT_DOUBLE_EQ(events[0].latencyFactor, 2.5);
  EXPECT_DOUBLE_EQ(events[0].dropProbability, 0.1);
  EXPECT_EQ(events[1].kind, sim::FaultKind::kNodeCrash);
  EXPECT_EQ(events[1].nodeIndex, 2u);
  EXPECT_EQ(events[2].kind, sim::FaultKind::kTierOutage);
  EXPECT_EQ(events[3].kind, sim::FaultKind::kTierRecover);
  EXPECT_EQ(events[4].kind, sim::FaultKind::kNodeRestart);
  EXPECT_EQ(events[5].kind, sim::FaultKind::kDegradeEnd);
}

TEST(FaultSchedule, KindNamesAreDistinct) {
  EXPECT_NE(sim::faultKindName(sim::FaultKind::kNodeCrash),
            sim::faultKindName(sim::FaultKind::kNodeRestart));
  EXPECT_NE(sim::faultKindName(sim::FaultKind::kTierOutage),
            sim::faultKindName(sim::FaultKind::kDegradeBegin));
  EXPECT_EQ(sim::faultKindName(sim::FaultKind::kNodeSlowBegin),
            "node-slow-begin");
  EXPECT_EQ(sim::faultKindName(sim::FaultKind::kPartialPartitionEnd),
            "partial-partition-end");
  EXPECT_EQ(sim::faultKindName(sim::FaultKind::kNodeFlakyBegin),
            "node-flaky-begin");
}

TEST(FaultSchedule, GrayBuildersExpandToPairedEvents) {
  sim::FaultSchedule schedule;
  schedule.slowNode(100, 500, sim::TierKind::kAppServer, 1, 10.0);
  schedule.partialPartition(200, 400, sim::TierKind::kSqlFrontend,
                            sim::TierKind::kKvStorage);
  schedule.flakyNode(300, 600, sim::TierKind::kRemoteCache, 2, 0.25);
  ASSERT_EQ(schedule.size(), 6u);

  const auto& events = schedule.events();
  EXPECT_EQ(events[0].kind, sim::FaultKind::kNodeSlowBegin);
  EXPECT_DOUBLE_EQ(events[0].latencyFactor, 10.0);
  EXPECT_EQ(events[0].nodeIndex, 1u);
  EXPECT_EQ(events[1].kind, sim::FaultKind::kPartialPartitionBegin);
  EXPECT_EQ(events[1].tier, sim::TierKind::kSqlFrontend);
  EXPECT_EQ(events[1].dstTier, sim::TierKind::kKvStorage);
  EXPECT_EQ(events[2].kind, sim::FaultKind::kNodeFlakyBegin);
  EXPECT_DOUBLE_EQ(events[2].dropProbability, 0.25);
  EXPECT_EQ(events[3].kind, sim::FaultKind::kPartialPartitionEnd);
  EXPECT_EQ(events[3].dstTier, sim::TierKind::kKvStorage);
  EXPECT_EQ(events[4].kind, sim::FaultKind::kNodeSlowEnd);
  EXPECT_EQ(events[5].kind, sim::FaultKind::kNodeFlakyEnd);
}

TEST(FaultSchedule, GrayBuildersClampOutOfRangeKnobs) {
  sim::FaultSchedule schedule;
  schedule.slowNode(0, 100, sim::TierKind::kAppServer, 0, 0.25);  // < 1x
  schedule.flakyNode(0, 100, sim::TierKind::kAppServer, 0, 1.75);
  const auto& events = schedule.events();
  // A "slow" factor below 1 would be a speedup; it clamps to neutral.
  EXPECT_DOUBLE_EQ(events[0].latencyFactor, 1.0);
  // Drop probabilities are probabilities.
  EXPECT_DOUBLE_EQ(events[1].dropProbability, 1.0);
}

TEST(FaultSchedule, InvertedWindowsClampToEmptyLength) {
  // Regression: an inverted window (until < from) used to sort its end
  // event before its begin event — closing a window that never opened,
  // then opening it with no matching close. The builders now clamp the
  // end up to the start, making the window empty instead of eternal.
  sim::FaultSchedule schedule;
  schedule.crashWindow(500, 100, sim::TierKind::kAppServer, 0);
  schedule.tierOutage(500, 100, sim::TierKind::kRemoteCache);
  schedule.degradeNetwork(500, 100, 2.0, 0.1);
  schedule.slowNode(500, 100, sim::TierKind::kAppServer, 1, 10.0);
  schedule.partialPartition(500, 100, sim::TierKind::kAppServer,
                            sim::TierKind::kRemoteCache);
  schedule.flakyNode(500, 100, sim::TierKind::kRemoteCache, 0, 0.3);

  const auto& events = schedule.events();
  ASSERT_EQ(events.size(), 12u);
  for (const auto& event : events) EXPECT_EQ(event.atMicros, 500u);
  // Insertion order survives the (stable) sort, so every begin still
  // precedes its end and the net effect at t=500 is a no-op.
  EXPECT_EQ(events[0].kind, sim::FaultKind::kNodeCrash);
  EXPECT_EQ(events[1].kind, sim::FaultKind::kNodeRestart);
  EXPECT_EQ(events[6].kind, sim::FaultKind::kNodeSlowBegin);
  EXPECT_EQ(events[7].kind, sim::FaultKind::kNodeSlowEnd);
}

// ----------------------------------------------------------- channel policy

class FaultChannelTest : public ::testing::Test {
 protected:
  FaultChannelTest()
      : client_("client", sim::TierKind::kAppServer),
        server_("server", sim::TierKind::kRemoteCache),
        channel_(network_, rpc::SerializationModel{}) {}

  sim::NetworkModel network_;
  sim::Node client_;
  sim::Node server_;
  rpc::Channel channel_;
};

TEST_F(FaultChannelTest, DownServerExhaustsRetryBudget) {
  channel_.enableFaults(7);
  server_.setUp(false);
  rpc::CallPolicy policy;  // 3 attempts, 2000us timeout
  const auto result =
      channel_.callWithPolicy(client_, server_, 128, 4096, policy);

  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, policy.maxAttempts);
  EXPECT_EQ(result.timedOutLegs, policy.maxAttempts);
  // Every attempt waits out the timeout; retries add jittered backoff.
  EXPECT_GE(result.latencyMicros,
            static_cast<double>(policy.maxAttempts) * policy.timeoutMicros);
  EXPECT_GT(result.wastedCpuMicros, 0.0);

  const auto& counters = channel_.faultCounters();
  EXPECT_EQ(counters.retries, policy.maxAttempts - 1);
  EXPECT_EQ(counters.timeouts, policy.maxAttempts);
  EXPECT_EQ(counters.failedCalls, 1u);
  EXPECT_DOUBLE_EQ(counters.wastedCpuMicros, result.wastedCpuMicros);
}

TEST_F(FaultChannelTest, FailedLegsStillChargeTheClient) {
  channel_.enableFaults(7);
  server_.setUp(false);
  channel_.callWithPolicy(client_, server_, 128, 4096, rpc::CallPolicy{});
  // Retries are a cost: the client marshalled and framed every attempt...
  EXPECT_GT(client_.cpu().totalMicros(), 0.0);
  // ...while the dead server never did any work.
  EXPECT_DOUBLE_EQ(server_.cpu().totalMicros(), 0.0);
}

TEST_F(FaultChannelTest, HappyPathUnderFaultsMatchesDirectAccounting) {
  sim::NetworkModel cleanNetwork;
  rpc::Channel clean(cleanNetwork, rpc::SerializationModel{});
  sim::Node refClient("client", sim::TierKind::kAppServer);
  sim::Node refServer("server", sim::TierKind::kRemoteCache);

  channel_.enableFaults(7);
  const auto faulted = channel_.call(client_, server_, 256, 8192);
  const auto direct = clean.call(refClient, refServer, 256, 8192);

  ASSERT_TRUE(faulted.ok);
  EXPECT_DOUBLE_EQ(faulted.latencyMicros, direct.latencyMicros);
  for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
    const auto component = static_cast<sim::CpuComponent>(c);
    EXPECT_DOUBLE_EQ(client_.cpu().micros(component),
                     refClient.cpu().micros(component));
    EXPECT_DOUBLE_EQ(server_.cpu().micros(component),
                     refServer.cpu().micros(component));
  }
  EXPECT_EQ(channel_.faultCounters().timeouts, 0u);
  EXPECT_EQ(channel_.faultCounters().retries, 0u);
}

TEST_F(FaultChannelTest, CertainDropFailsDespiteHealthyServer) {
  channel_.enableFaults(7);
  network_.setDegradation(1.0, 1.0);  // every leg lost
  const auto result = channel_.call(client_, server_, 128, 1024);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(channel_.faultCounters().failedCalls, 1u);
  EXPECT_DOUBLE_EQ(server_.cpu().totalMicros(), 0.0);
}

TEST_F(FaultChannelTest, DegradationWindowScalesLatencyAndClears) {
  const double clean =
      channel_.call(client_, server_, 128, 4096).latencyMicros;
  network_.setDegradation(2.0, 0.0);
  EXPECT_TRUE(network_.degraded());
  const double degraded =
      channel_.call(client_, server_, 128, 4096).latencyMicros;
  EXPECT_DOUBLE_EQ(degraded, 2.0 * clean);
  network_.clearDegradation();
  EXPECT_FALSE(network_.degraded());
  EXPECT_DOUBLE_EQ(channel_.call(client_, server_, 128, 4096).latencyMicros,
                   clean);
}

TEST_F(FaultChannelTest, SeededDropSequenceIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::NetworkModel network;
    rpc::Channel channel(network, rpc::SerializationModel{});
    sim::Node client("client", sim::TierKind::kAppServer);
    sim::Node server("server", sim::TierKind::kRemoteCache);
    channel.enableFaults(seed);
    network.setDegradation(1.5, 0.3);
    double latency = 0.0;
    for (int i = 0; i < 200; ++i) {
      latency += channel.call(client, server, 64, 512).latencyMicros;
    }
    return std::pair<double, rpc::Channel::FaultCounters>(
        latency, channel.faultCounters());
  };
  const auto [latencyA, countersA] = run(42);
  const auto [latencyB, countersB] = run(42);
  const auto [latencyC, countersC] = run(43);
  EXPECT_DOUBLE_EQ(latencyA, latencyB);
  EXPECT_EQ(countersA.timeouts, countersB.timeouts);
  EXPECT_EQ(countersA.retries, countersB.retries);
  EXPECT_DOUBLE_EQ(countersA.wastedCpuMicros, countersB.wastedCpuMicros);
  // A different seed rolls different drops (overwhelmingly likely at 30%).
  EXPECT_NE(countersA.timeouts, countersC.timeouts);
}

// ------------------------------------------------------- deployment faults

workload::SyntheticConfig smallWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 2000;
  config.valueSize = 1024;
  config.readRatio = 0.95;
  return config;
}

/// Drive `ops` operations, advancing the sim clock 10us per op from
/// `startMicros`. Returns the clock after the last op.
std::uint64_t drive(core::Deployment& deployment,
                    workload::SyntheticWorkload& workload, std::uint64_t ops,
                    std::uint64_t startMicros) {
  constexpr std::uint64_t kMicrosPerOp = 10;
  for (std::uint64_t i = 0; i < ops; ++i) {
    deployment.setSimTimeMicros(startMicros + i * kMicrosPerOp);
    deployment.serve(workload.next());
  }
  return startMicros + ops * kMicrosPerOp;
}

TEST(DeploymentFaults, EmptyScheduleIsBehaviorIdenticalToNoSchedule) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;

  core::Deployment plain(config);
  core::Deployment faulted(config);
  workload::SyntheticWorkload workloadA{smallWorkload()};
  workload::SyntheticWorkload workloadB{smallWorkload()};
  plain.populateKv(workloadA);
  faulted.populateKv(workloadB);
  faulted.installFaultSchedule(sim::FaultSchedule{});
  ASSERT_TRUE(faulted.faultsInstalled());

  drive(plain, workloadA, 5000, 0);
  drive(faulted, workloadB, 5000, 0);

  EXPECT_EQ(plain.counters().cacheHits, faulted.counters().cacheHits);
  EXPECT_EQ(plain.counters().cacheMisses, faulted.counters().cacheMisses);
  EXPECT_DOUBLE_EQ(plain.latencies().mean(), faulted.latencies().mean());
  const auto plainTiers = plain.tiers();
  const auto faultedTiers = faulted.tiers();
  ASSERT_EQ(plainTiers.size(), faultedTiers.size());
  for (std::size_t t = 0; t < plainTiers.size(); ++t) {
    EXPECT_DOUBLE_EQ(plainTiers[t]->aggregateCpu().totalMicros(),
                     faultedTiers[t]->aggregateCpu().totalMicros())
        << plainTiers[t]->name();
  }
  // No fault-path accounting leaked in.
  EXPECT_EQ(faulted.counters().retries, 0u);
  EXPECT_EQ(faulted.counters().timeouts, 0u);
  EXPECT_EQ(faulted.counters().degradedReads, 0u);
  EXPECT_DOUBLE_EQ(faulted.counters().wastedCpuMicros, 0.0);
}

TEST(DeploymentFaults, LinkedCrashShedsOwnershipAndHitRatio) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 8000, 0);  // warm
  deployment.clearMeters();
  now = drive(deployment, workload, 1500, now);
  const double steadyHitRatio = deployment.counters().hitRatio();
  EXPECT_GT(steadyHitRatio, 0.8);

  sim::FaultSchedule schedule;
  schedule.crashNode(now, sim::TierKind::kAppServer, 0);
  deployment.installFaultSchedule(std::move(schedule));
  const std::uint64_t epochBefore = deployment.ownershipEpoch();

  deployment.clearMeters();
  now = drive(deployment, workload, 1500, now);

  // The ring resharded: node 0 lost its shard, the epoch and its lease
  // fencing epoch bumped, and ~1/N of the working set went cold.
  EXPECT_FALSE(deployment.linkedCache()->hasServer(0));
  EXPECT_GT(deployment.ownershipEpoch(), epochBefore);
  ASSERT_NE(deployment.leases(), nullptr);
  EXPECT_GE(deployment.leases()->epoch(0), 2u);
  // The dead node owned ~1/N of the ring; its share of the working set
  // re-misses in the window right after the crash.
  const double crashHitRatio = deployment.counters().hitRatio();
  EXPECT_LT(crashHitRatio, steadyHitRatio - 0.03);

  // Routing never targets the dead node: it does no work at all.
  EXPECT_DOUBLE_EQ(deployment.appTier().node(0).cpu().totalMicros(), 0.0);
  EXPECT_EQ(deployment.appTier().upCount(), deployment.appTier().size() - 1);
}

TEST(DeploymentFaults, LinkedRestartRestoresOwnershipCold) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 6000, 0);
  sim::FaultSchedule schedule;
  schedule.crashWindow(now, now + 50000, sim::TierKind::kAppServer, 0);
  deployment.installFaultSchedule(std::move(schedule));

  now = drive(deployment, workload, 3000, now);  // down period (30ms)
  ASSERT_FALSE(deployment.linkedCache()->hasServer(0));

  deployment.setSimTimeMicros(now + 20000);  // restart event fires
  EXPECT_TRUE(deployment.linkedCache()->hasServer(0));
  EXPECT_TRUE(deployment.appTier().node(0).isUp());
  // Cold restart: the shard comes back empty and re-warms from traffic.
  EXPECT_EQ(deployment.linkedCache()->shard(0).itemCount(), 0u);
  deployment.clearMeters();
  drive(deployment, workload, 8000, now + 20000);
  EXPECT_GT(deployment.linkedCache()->shard(0).itemCount(), 0u);
  EXPECT_GT(deployment.counters().hitRatio(), 0.5);
}

TEST(DeploymentFaults, RemoteCrashDegradesReadsToStorage) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kRemote;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 6000, 0);
  deployment.clearMeters();
  now = drive(deployment, workload, 3000, now);
  const double steadyHitRatio = deployment.counters().hitRatio();
  const std::uint64_t steadyReads = deployment.counters().storageReads;

  sim::FaultSchedule schedule;
  schedule.crashNode(now, sim::TierKind::kRemoteCache, 0);
  deployment.installFaultSchedule(std::move(schedule));
  deployment.clearMeters();
  drive(deployment, workload, 3000, now);

  const core::ServeCounters& counters = deployment.counters();
  // Reads for the dead pod's keys fail fast and fall back to storage —
  // availability survives, the cost moves to the database tier.
  EXPECT_GT(counters.degradedReads, 0u);
  EXPECT_GT(counters.failedCalls, 0u);
  EXPECT_GT(counters.timeouts, 0u);
  EXPECT_GT(counters.wastedCpuMicros, 0.0);
  EXPECT_LT(counters.hitRatio(), steadyHitRatio);
  EXPECT_GT(counters.storageReads, steadyReads);
}

TEST(DeploymentFaults, SingleFlightCoalescesConcurrentMisses) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kRemote;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  sim::FaultSchedule schedule;
  schedule.crashNode(0, sim::TierKind::kRemoteCache, 0);
  deployment.installFaultSchedule(std::move(schedule));
  deployment.setSimTimeMicros(1);

  // Find a key owned by the dead pod: its fills are skipped (circuit
  // breaker), so every read misses and hits the storage path.
  std::uint64_t victim = 0;
  while (deployment.remoteCache()->nodeUpFor(workload::keyName(victim))) {
    ++victim;
  }
  workload::Op op;
  op.keyIndex = victim;
  op.valueSize = 1024;

  // Burst of reads for the same key at the same instant: the first issues
  // the storage read, the rest join it.
  deployment.serve(op);
  const std::uint64_t readsAfterFirst = deployment.counters().storageReads;
  for (int i = 0; i < 9; ++i) deployment.serve(op);
  EXPECT_EQ(deployment.counters().coalescedMisses, 9u);
  EXPECT_EQ(deployment.counters().storageReads, readsAfterFirst);

  // Once the in-flight read completes, the next miss issues its own.
  deployment.setSimTimeMicros(10'000'000);
  deployment.serve(op);
  EXPECT_EQ(deployment.counters().storageReads, readsAfterFirst + 1);
}

TEST(DeploymentFaults, KvCrashOnlyColdsTheBlockCache) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kBase;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 6000, 0);
  const std::uint64_t missesBefore = deployment.db().blockCacheMisses();

  sim::FaultSchedule schedule;
  schedule.crashNode(now, sim::TierKind::kKvStorage, 0);
  deployment.installFaultSchedule(std::move(schedule));
  drive(deployment, workload, 3000, now);

  // Raft failover keeps every node serving; the only scar is a cold block
  // cache paying the disk path until it re-warms.
  const auto tiers = deployment.tiers();
  const sim::Tier* kvTier = tiers.back();
  EXPECT_EQ(kvTier->upCount(), kvTier->size());
  EXPECT_GT(deployment.db().blockCacheMisses(), missesBefore);
}

TEST(DeploymentFaults, TierOutageKeepsShardContentsWarm) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kRemote;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  std::uint64_t now = drive(deployment, workload, 6000, 0);
  sim::FaultSchedule schedule;
  schedule.tierOutage(now, now + 10000, sim::TierKind::kRemoteCache);
  deployment.installFaultSchedule(std::move(schedule));

  deployment.clearMeters();
  now = drive(deployment, workload, 1000, now);  // during the outage
  EXPECT_GT(deployment.counters().degradedReads, 0u);
  EXPECT_DOUBLE_EQ(deployment.counters().hitRatio(), 0.0);

  // Unreachable is not dead: the partition heals and the caches are still
  // warm — hit ratio snaps back without a re-warm period.
  deployment.setSimTimeMicros(now + 20000);
  deployment.clearMeters();
  drive(deployment, workload, 2000, now + 20000);
  EXPECT_GT(deployment.counters().hitRatio(), 0.5);
}

TEST(DeploymentFaults, InvertedSlowWindowLeavesNodeAtNeutralSpeed) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{smallWorkload()};
  deployment.populateKv(workload);

  sim::FaultSchedule schedule;
  schedule.slowNode(5000, 1000, sim::TierKind::kAppServer, 0, 10.0);
  deployment.installFaultSchedule(std::move(schedule));

  deployment.setSimTimeMicros(6000);  // both events fired, in clamp order
  EXPECT_DOUBLE_EQ(deployment.appTier().node(0).slowFactor(), 1.0);
}

TEST(DeploymentFaults, IdenticalSeedsReplayIdenticalTimelines) {
  auto run = [](std::uint64_t faultSeed) {
    core::DeploymentConfig config;
    config.architecture = core::Architecture::kRemote;
    config.faultSeed = faultSeed;
    core::Deployment deployment(config);
    workload::SyntheticWorkload workload{smallWorkload()};
    deployment.populateKv(workload);
    std::uint64_t now = drive(deployment, workload, 3000, 0);
    sim::FaultSchedule schedule;
    schedule.degradeNetwork(now, now + 30000, 2.0, 0.05);
    schedule.crashNode(now + 5000, sim::TierKind::kRemoteCache, 1);
    deployment.installFaultSchedule(std::move(schedule));
    drive(deployment, workload, 5000, now);
    return deployment.counters();
  };
  const core::ServeCounters a = run(99);
  const core::ServeCounters b = run(99);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failedCalls, b.failedCalls);
  EXPECT_EQ(a.degradedReads, b.degradedReads);
  EXPECT_DOUBLE_EQ(a.wastedCpuMicros, b.wastedCpuMicros);
}

}  // namespace
}  // namespace dcache
