// RPC channel accounting tests: who pays for what on a unary call, the
// marshal flag, framing-component attribution, and the serialization model
// itself.
#include <gtest/gtest.h>

#include "rpc/channel.hpp"
#include "rpc/serialization_model.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace dcache::rpc {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest()
      : client_("client", sim::TierKind::kAppServer),
        server_("server", sim::TierKind::kKvStorage),
        channel_(network_, SerializationModel{}) {}

  sim::NetworkModel network_;
  sim::Node client_;
  sim::Node server_;
  Channel channel_;
};

TEST_F(ChannelTest, UnaryCallChargesAllFourLegs) {
  const auto result = channel_.call(client_, server_, 100, 1000);
  EXPECT_EQ(result.requestBytes, 100u);
  EXPECT_EQ(result.responseBytes, 1000u);
  EXPECT_GT(result.latencyMicros, 0.0);

  const SerializationModel& s = channel_.serializer();
  // Client: serialize request + deserialize response.
  EXPECT_NEAR(client_.cpu().micros(sim::CpuComponent::kSerialization),
              s.serializeMicros(100), 1e-9);
  EXPECT_NEAR(client_.cpu().micros(sim::CpuComponent::kDeserialization),
              s.deserializeMicros(1000), 1e-9);
  // Server: the mirror image.
  EXPECT_NEAR(server_.cpu().micros(sim::CpuComponent::kDeserialization),
              s.deserializeMicros(100), 1e-9);
  EXPECT_NEAR(server_.cpu().micros(sim::CpuComponent::kSerialization),
              s.serializeMicros(1000), 1e-9);
  // Framing charged at both ends for both directions.
  EXPECT_GT(client_.cpu().micros(sim::CpuComponent::kRpcFraming), 0.0);
  EXPECT_GT(server_.cpu().micros(sim::CpuComponent::kRpcFraming), 0.0);
  EXPECT_EQ(channel_.callCount(), 1u);
  EXPECT_EQ(network_.messagesSent(), 2u);
}

TEST_F(ChannelTest, MarshalFalseSkipsSerializationOnly) {
  channel_.call(client_, server_, 100, 1000, /*marshal=*/false);
  EXPECT_DOUBLE_EQ(client_.cpu().micros(sim::CpuComponent::kSerialization),
                   0.0);
  EXPECT_DOUBLE_EQ(server_.cpu().micros(sim::CpuComponent::kSerialization),
                   0.0);
  // Bytes still cross the wire: framing is charged.
  EXPECT_GT(client_.cpu().micros(sim::CpuComponent::kRpcFraming), 0.0);
}

TEST_F(ChannelTest, FramingComponentAttribution) {
  channel_.call(client_, server_, 64, 64, true,
                sim::CpuComponent::kClientComm);
  EXPECT_GT(client_.cpu().micros(sim::CpuComponent::kClientComm), 0.0);
  EXPECT_DOUBLE_EQ(client_.cpu().micros(sim::CpuComponent::kRpcFraming),
                   0.0);
}

TEST_F(ChannelTest, InProcessCallIsFree) {
  const auto result = channel_.call(client_, client_, 1 << 20, 1 << 20);
  EXPECT_DOUBLE_EQ(result.latencyMicros, 0.0);
  EXPECT_DOUBLE_EQ(client_.cpu().totalMicros(), 0.0);
}

TEST_F(ChannelTest, OneWayChargesSingleLeg) {
  const double latency = channel_.oneWay(client_, server_, 256);
  EXPECT_GT(latency, 0.0);
  EXPECT_GT(client_.cpu().micros(sim::CpuComponent::kSerialization), 0.0);
  EXPECT_GT(server_.cpu().micros(sim::CpuComponent::kDeserialization), 0.0);
  // No response: the server serializes nothing.
  EXPECT_DOUBLE_EQ(server_.cpu().micros(sim::CpuComponent::kSerialization),
                   0.0);
  EXPECT_EQ(network_.messagesSent(), 1u);
}

TEST_F(ChannelTest, LatencyScalesWithBytes) {
  const auto small = channel_.call(client_, server_, 64, 64);
  const auto large = channel_.call(client_, server_, 64, 1 << 20);
  EXPECT_GT(large.latencyMicros, small.latencyMicros);
}

TEST(SerializationModel, LinearInBytes) {
  const SerializationModel model;
  const double base = model.serializeMicros(0);
  const double per1k = model.serializeMicros(1000) - base;
  const double per2k = model.serializeMicros(2000) - base;
  EXPECT_NEAR(per2k, 2.0 * per1k, 1e-9);
  // Decode is configured slower than encode.
  EXPECT_GT(model.deserializeMicros(1 << 20), model.serializeMicros(1 << 20));
}

TEST(SerializationModel, ChargeHelpers) {
  const SerializationModel model;
  sim::Node node("n", sim::TierKind::kAppServer);
  model.chargeSerialize(node, 1000);
  model.chargeDeserialize(node, 1000);
  EXPECT_NEAR(node.cpu().micros(sim::CpuComponent::kSerialization),
              model.serializeMicros(1000), 1e-9);
  EXPECT_NEAR(node.cpu().micros(sim::CpuComponent::kDeserialization),
              model.deserializeMicros(1000), 1e-9);
}

}  // namespace
}  // namespace dcache::rpc
