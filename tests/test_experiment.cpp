// Experiment runner and report tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workload/synthetic.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] workload::SyntheticConfig tinyWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 500;
  config.valueSize = 512;
  return config;
}

[[nodiscard]] DeploymentConfig tinyDeployment() {
  DeploymentConfig config;
  config.appCachePerNode = util::Bytes::mb(16);
  config.remoteCachePerNode = util::Bytes::mb(16);
  config.blockCachePerNode = util::Bytes::mb(16);
  return config;
}

TEST(Experiment, WarmupIsNotPriced) {
  ExperimentConfig experiment;
  experiment.operations = 1000;
  experiment.warmupOperations = 5000;
  experiment.qps = 1000;

  workload::SyntheticWorkload workload(tinyWorkload());
  Deployment deployment(tinyDeployment());
  deployment.populateKv(workload);
  ExperimentRunner runner(experiment);
  const auto result = runner.run(deployment, workload);

  // Counters reflect only the measured window.
  EXPECT_EQ(result.counters.reads + result.counters.writes, 1000u);
  EXPECT_DOUBLE_EQ(result.simulatedSeconds, 1.0);
  EXPECT_GT(result.cost.totalCost.dollars(), 0.0);
  EXPECT_GT(result.meanLatencyMicros, 0.0);
  EXPECT_GE(result.p99LatencyMicros, result.meanLatencyMicros);
}

TEST(Experiment, CostScalesWithQps) {
  // Same per-op work at 10x the offered load needs ~10x the cores.
  auto runAt = [&](double qps) {
    ExperimentConfig experiment;
    experiment.operations = 5000;
    experiment.warmupOperations = 5000;
    experiment.qps = qps;
    workload::SyntheticWorkload workload(tinyWorkload());
    return runArchitecture(Architecture::kLinked, workload, tinyDeployment(),
                           experiment);
  };
  const auto slow = runAt(1000);
  const auto fast = runAt(10000);
  EXPECT_NEAR(fast.cost.computeCost / slow.cost.computeCost, 10.0, 0.5);
  // Memory cost does not scale with load.
  EXPECT_NEAR(fast.cost.memoryCost / slow.cost.memoryCost, 1.0, 1e-6);
}

TEST(Experiment, UtilizationHeadroomInflatesCores) {
  auto runWith = [&](double utilization) {
    ExperimentConfig experiment;
    experiment.operations = 2000;
    experiment.warmupOperations = 1000;
    experiment.targetUtilization = utilization;
    workload::SyntheticWorkload workload(tinyWorkload());
    return runArchitecture(Architecture::kBase, workload, tinyDeployment(),
                           experiment);
  };
  const auto tight = runWith(1.0);
  const auto headroom = runWith(0.5);
  EXPECT_NEAR(headroom.cost.computeCost / tight.cost.computeCost, 2.0, 0.05);
}

TEST(Experiment, RunArchitectureLabelsResult) {
  ExperimentConfig experiment;
  experiment.operations = 500;
  experiment.warmupOperations = 500;
  workload::SyntheticWorkload workload(tinyWorkload());
  const auto result = runArchitecture(Architecture::kRemote, workload,
                                      tinyDeployment(), experiment);
  EXPECT_EQ(result.architecture, "Remote");
  EXPECT_NE(result.workload.find("synthetic"), std::string::npos);
}

TEST(Report, TablesContainAllArchitectures) {
  ExperimentConfig experiment;
  experiment.operations = 500;
  experiment.warmupOperations = 500;
  std::vector<ExperimentResult> results;
  for (const Architecture arch : kAllArchitectures) {
    workload::SyntheticWorkload workload(tinyWorkload());
    results.push_back(
        runArchitecture(arch, workload, tinyDeployment(), experiment));
  }
  const std::string table = costComparisonTable(results, "Costs");
  for (const Architecture arch : kAllArchitectures) {
    EXPECT_NE(table.find(architectureName(arch)), std::string::npos);
  }
  // The baseline row reports 1.00x against itself.
  EXPECT_NE(table.find("1.00x"), std::string::npos);

  const std::string breakdown = cpuBreakdownTable(results.back(), "CPU");
  EXPECT_NE(breakdown.find("app"), std::string::npos);
  EXPECT_NE(breakdown.find("%"), std::string::npos);
}

TEST(Report, SavingsAndShares) {
  ExperimentConfig experiment;
  experiment.operations = 2000;
  experiment.warmupOperations = 2000;
  workload::SyntheticWorkload workloadA(tinyWorkload());
  const auto base = runArchitecture(Architecture::kBase, workloadA,
                                    tinyDeployment(), experiment);
  workload::SyntheticWorkload workloadB(tinyWorkload());
  const auto linked = runArchitecture(Architecture::kLinked, workloadB,
                                      tinyDeployment(), experiment);
  EXPECT_GT(savingsVs(base, linked), 1.0);
  EXPECT_GT(memoryCostShare(linked), memoryCostShare(base));
  // §5.3: most database cycles on the Base path are query processing.
  EXPECT_GT(queryProcessingShare(base), 0.3);
  EXPECT_LT(queryProcessingShare(base), 0.8);
}

}  // namespace
}  // namespace dcache::core
