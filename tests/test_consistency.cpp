// Consistency machinery tests: version checker, ownership leases,
// invalidation bus, the Fig. 8 delayed-write scenario, and the
// linearizability checker.
#include <gtest/gtest.h>

#include "consistency/delayed_write.hpp"
#include "consistency/invalidation.hpp"
#include "consistency/lease.hpp"
#include "consistency/linearizability.hpp"
#include "consistency/version_check.hpp"
#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"

namespace dcache::consistency {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  ConsistencyTest()
      : sqlTier_("sql", sim::TierKind::kSqlFrontend, 1),
        kvTier_("kv", sim::TierKind::kKvStorage, 3),
        appTier_("app", sim::TierKind::kAppServer, 3),
        client_("client", sim::TierKind::kClient),
        channel_(network_, rpc::SerializationModel{}),
        db_(sqlTier_, kvTier_, channel_) {}

  sim::NetworkModel network_;
  sim::Tier sqlTier_;
  sim::Tier kvTier_;
  sim::Tier appTier_;
  sim::Node client_;
  rpc::Channel channel_;
  storage::Database db_;
};

TEST_F(ConsistencyTest, VersionCheckerDetectsFreshAndStale) {
  db_.loadValue("k", 100);
  const auto current = db_.peekValueVersion("k");
  ASSERT_TRUE(current.has_value());

  VersionChecker checker(db_);
  const auto fresh = checker.check(client_, "k", *current);
  EXPECT_TRUE(fresh.consistent);
  EXPECT_TRUE(fresh.found);

  db_.writeValue(client_, "k", 100);  // storage moves ahead
  const auto stale = checker.check(client_, "k", *current);
  EXPECT_FALSE(stale.consistent);
  EXPECT_GT(stale.storageVersion, *current);

  EXPECT_EQ(checker.checks(), 2u);
  EXPECT_EQ(checker.mismatches(), 1u);
  EXPECT_DOUBLE_EQ(checker.mismatchRate(), 0.5);
}

TEST_F(ConsistencyTest, VersionCheckerMissingKey) {
  VersionChecker checker(db_);
  const auto missing = checker.check(client_, "ghost", 1);
  EXPECT_FALSE(missing.consistent);
  EXPECT_FALSE(missing.found);
}

TEST_F(ConsistencyTest, LeaseLifecycle) {
  LeaseConfig config;
  config.leaseTermMicros = 1000;
  LeaseManager leases(appTier_, kvTier_.node(0), channel_, config);

  // No lease yet: cannot serve.
  EXPECT_FALSE(leases.canServeLocally(0, 0));
  leases.renew(0, 0);
  EXPECT_EQ(leases.renewals(), 1u);
  EXPECT_TRUE(leases.canServeLocally(0, 500));
  // Expired.
  EXPECT_FALSE(leases.canServeLocally(0, 1000));
  // Renew-at-half-term: a renewal right after acquiring is a no-op.
  leases.renew(0, 1100);
  EXPECT_EQ(leases.renewals(), 2u);
  leases.renew(0, 1101);
  EXPECT_EQ(leases.renewals(), 2u);  // still fresh, skipped
}

TEST_F(ConsistencyTest, LeaseRevocationBumpsEpoch) {
  LeaseManager leases(appTier_, kvTier_.node(0), channel_);
  leases.renew(1, 0);
  const auto epoch = leases.epoch(1);
  EXPECT_TRUE(leases.canServeLocally(1, 10));
  leases.revoke(1);
  EXPECT_FALSE(leases.canServeLocally(1, 10));
  EXPECT_GT(leases.epoch(1), epoch);
  // Re-acquisition starts yet another epoch.
  leases.renew(1, 20);
  EXPECT_GT(leases.epoch(1), epoch + 1);
  EXPECT_TRUE(leases.canServeLocally(1, 30));
}

TEST_F(ConsistencyTest, LeaseRenewalChargesRpcNotReads) {
  LeaseManager leases(appTier_, kvTier_.node(0), channel_);
  leases.renew(0, 0);
  const double afterRenew = appTier_.node(0).cpu().totalMicros();
  EXPECT_GT(afterRenew, 0.0);  // one RPC to the authority
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(leases.canServeLocally(0, 100));
  }
  // 1000 local checks cost far less than one more renewal RPC would.
  const double checksCpu = appTier_.node(0).cpu().totalMicros() - afterRenew;
  EXPECT_LT(checksCpu, afterRenew * 10);
  EXPECT_EQ(leases.localChecks(), 1000u);
}

TEST_F(ConsistencyTest, InvalidationBusDeliversToAllButWriter) {
  InvalidationBus bus(channel_);
  std::vector<int> delivered(3, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    bus.subscribe(appTier_.node(i), [&delivered, i](std::string_view,
                                                    std::uint64_t) {
      ++delivered[i];
    });
  }
  bus.publish(appTier_.node(0), "k", 5, /*skipSubscriber=*/0);
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(bus.published(), 1u);
  EXPECT_EQ(bus.delivered(), 2u);
}

TEST_F(ConsistencyTest, InvalidationPublishToOneOwner) {
  InvalidationBus bus(channel_);
  int hits = 0;
  std::uint64_t seenVersion = 0;
  bus.subscribe(appTier_.node(0), [&](std::string_view key, std::uint64_t v) {
    ++hits;
    seenVersion = v;
    EXPECT_EQ(key, "the-key");
  });
  bus.subscribe(appTier_.node(1),
                [&](std::string_view, std::uint64_t) { ++hits; });
  bus.publishTo(0, appTier_.node(2), "the-key", 42);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(seenVersion, 42u);
}

TEST(DelayedWrite, AnomalyWithoutFencing) {
  DelayedWriteConfig config;  // write lands after the reshard + warm read
  config.epochFencing = false;
  const auto outcome = runDelayedWriteScenario(config);
  EXPECT_TRUE(outcome.anomaly);
  EXPECT_EQ(outcome.cacheVersion, 1u);    // new owner warmed the old value
  EXPECT_EQ(outcome.storageVersion, 2u);  // delayed write landed afterwards
  EXPECT_FALSE(outcome.writeRejected);
  EXPECT_NE(outcome.history.find("ANOMALY"), std::string::npos);
}

TEST(DelayedWrite, EpochFencingPreventsAnomaly) {
  DelayedWriteConfig config;
  config.epochFencing = true;
  const auto outcome = runDelayedWriteScenario(config);
  EXPECT_FALSE(outcome.anomaly);
  EXPECT_TRUE(outcome.writeRejected);
  EXPECT_EQ(outcome.cacheVersion, outcome.storageVersion);
}

TEST(DelayedWrite, NoAnomalyWhenWriteLandsFirst) {
  DelayedWriteConfig config;
  config.writeDelayMicros = 100;   // write commits before the reshard
  config.reshardAtMicros = 2000;
  config.warmReadAtMicros = 3000;
  config.epochFencing = false;
  const auto outcome = runDelayedWriteScenario(config);
  EXPECT_FALSE(outcome.anomaly);
  EXPECT_EQ(outcome.cacheVersion, 2u);  // warmed the new value
}

TEST(DelayedWrite, SweepRatesMatchTheFix) {
  util::Pcg32 rng(55, 1);
  const double unfenced = delayedWriteAnomalyRate(400, false, rng);
  util::Pcg32 rng2(55, 1);
  const double fenced = delayedWriteAnomalyRate(400, true, rng2);
  EXPECT_GT(unfenced, 0.1);  // the race is common under random timing
  EXPECT_DOUBLE_EQ(fenced, 0.0);
}

// ---- Fault-injected reshard (crash-driven Fig. 8) ----

TEST(FaultInjectedReshard, LeaseRevocationFencesStaleWrite) {
  FaultInjectedReshardConfig config;  // crash at 2ms, write lands at 5ms
  ASSERT_TRUE(config.epochFencing);
  const auto outcome = runFaultInjectedReshardScenario(config);
  // The injected crash revoked the owner's lease before the delayed write
  // landed: storage fenced it on the bumped epoch.
  EXPECT_TRUE(outcome.writeRejected);
  EXPECT_FALSE(outcome.anomaly);
  EXPECT_EQ(outcome.cacheVersion, outcome.storageVersion);
  EXPECT_NE(outcome.history.find("REJECTED"), std::string::npos);
  EXPECT_NE(outcome.history.find("fault: node 0 crashed"),
            std::string::npos);
}

TEST(FaultInjectedReshard, WithoutFencingTheCrashReproducesTheAnomaly) {
  FaultInjectedReshardConfig config;
  config.epochFencing = false;
  const auto outcome = runFaultInjectedReshardScenario(config);
  EXPECT_TRUE(outcome.anomaly);
  EXPECT_FALSE(outcome.writeRejected);
  EXPECT_EQ(outcome.cacheVersion, 1u);    // successor warmed the old value
  EXPECT_EQ(outcome.storageVersion, 2u);  // stale write landed anyway
}

TEST(FaultInjectedReshard, WriteBeforeCrashIsNotFenced) {
  FaultInjectedReshardConfig config;
  config.writeDelayMicros = 100;  // commits before the crash revokes
  config.crashAtMicros = 2000;
  config.warmReadAtMicros = 3000;
  const auto outcome = runFaultInjectedReshardScenario(config);
  EXPECT_FALSE(outcome.writeRejected);
  EXPECT_FALSE(outcome.anomaly);
  EXPECT_EQ(outcome.cacheVersion, 2u);  // successor warmed the new value
}

// ---- Linearizability checker ----

TEST(Linearizability, AcceptsSequentialHistory) {
  History history;
  history.record({HistoryOpType::kWrite, "k", 1, 0, 10, 0});
  history.record({HistoryOpType::kRead, "k", 1, 20, 30, 0});
  history.record({HistoryOpType::kWrite, "k", 2, 40, 50, 1});
  history.record({HistoryOpType::kRead, "k", 2, 60, 70, 0});
  EXPECT_TRUE(isLinearizable(history));
}

TEST(Linearizability, DetectsStaleRead) {
  History history;
  history.record({HistoryOpType::kWrite, "k", 1, 0, 10, 0});
  history.record({HistoryOpType::kWrite, "k", 2, 20, 30, 0});
  // Read begins after write v2 completed but returns v1.
  history.record({HistoryOpType::kRead, "k", 1, 40, 50, 1});
  const auto violations = checkLinearizable(history);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].reason.find("stale read"), std::string::npos);
}

TEST(Linearizability, AllowsEitherValueDuringConcurrentWrite) {
  History history;
  history.record({HistoryOpType::kWrite, "k", 1, 0, 10, 0});
  history.record({HistoryOpType::kWrite, "k", 2, 20, 60, 0});  // in flight
  history.record({HistoryOpType::kRead, "k", 1, 30, 40, 1});   // old ok
  history.record({HistoryOpType::kRead, "k", 2, 45, 55, 2});   // new ok
  EXPECT_TRUE(isLinearizable(history));
}

TEST(Linearizability, DetectsReadFromTheFuture) {
  History history;
  history.record({HistoryOpType::kWrite, "k", 1, 0, 10, 0});
  history.record({HistoryOpType::kRead, "k", 7, 20, 30, 1});  // no such write
  const auto violations = checkLinearizable(history);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].reason.find("future"), std::string::npos);
}

TEST(Linearizability, DetectsNonMonotonicSessionReads) {
  History history;
  history.record({HistoryOpType::kWrite, "k", 1, 0, 10, 0});
  history.record({HistoryOpType::kWrite, "k", 2, 15, 60, 0});  // concurrent
  history.record({HistoryOpType::kRead, "k", 2, 20, 30, 7});
  history.record({HistoryOpType::kRead, "k", 1, 40, 50, 7});  // goes back
  const auto violations = checkLinearizable(history);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].reason.find("non-monotonic"), std::string::npos);
}

TEST(Linearizability, KeysAreIndependent) {
  History history;
  history.record({HistoryOpType::kWrite, "a", 5, 0, 10, 0});
  history.record({HistoryOpType::kWrite, "b", 9, 0, 10, 0});
  history.record({HistoryOpType::kRead, "a", 5, 20, 30, 0});
  history.record({HistoryOpType::kRead, "b", 9, 20, 30, 0});
  EXPECT_TRUE(isLinearizable(history));
}

}  // namespace
}  // namespace dcache::consistency
