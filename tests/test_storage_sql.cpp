// SQL layer tests: parser golden cases and error handling, planner access-
// path selection, and full end-to-end execution against the database
// (inserts, point/index/scan selects, joins, updates with index
// maintenance, deletes, parameters, limits).
#include <gtest/gtest.h>

#include <memory>

#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"
#include "storage/sql_parser.hpp"

namespace dcache::storage {
namespace {

// ---- Parser ----

TEST(Parser, SelectStar) {
  const Statement s = parseSqlOrThrow("SELECT * FROM users WHERE id = ?");
  EXPECT_EQ(s.kind, StatementKind::kSelect);
  EXPECT_TRUE(s.select.columns.empty());
  EXPECT_EQ(s.select.table, "users");
  ASSERT_EQ(s.select.where.size(), 1u);
  EXPECT_EQ(s.select.where[0].column, "id");
  EXPECT_FALSE(s.select.where[0].literal.has_value());
  EXPECT_EQ(s.paramCount, 1u);
}

TEST(Parser, SelectColumnsAndLimit) {
  const Statement s = parseSqlOrThrow(
      "select name, owner from tables where schema_id = 42 limit 10");
  EXPECT_EQ(s.select.columns,
            (std::vector<std::string>{"name", "owner"}));
  ASSERT_TRUE(s.select.limit.has_value());
  EXPECT_EQ(*s.select.limit, 10u);
  ASSERT_EQ(s.select.where.size(), 1u);
  EXPECT_EQ(s.select.where[0].literal, "42");
}

TEST(Parser, SelectJoin) {
  const Statement s = parseSqlOrThrow(
      "SELECT name FROM tables JOIN schemas ON tables.schema_id = schemas.id "
      "WHERE tables.id = ?");
  ASSERT_TRUE(s.select.join.has_value());
  EXPECT_EQ(s.select.join->table, "schemas");
  EXPECT_EQ(s.select.join->leftColumn, "schema_id");
  EXPECT_EQ(s.select.join->rightColumn, "id");
}

TEST(Parser, JoinConditionOrderNormalized) {
  const Statement s = parseSqlOrThrow(
      "SELECT name FROM tables JOIN schemas ON schemas.id = tables.schema_id");
  ASSERT_TRUE(s.select.join.has_value());
  EXPECT_EQ(s.select.join->leftColumn, "schema_id");
  EXPECT_EQ(s.select.join->rightColumn, "id");
}

TEST(Parser, MultiConditionWhere) {
  const Statement s = parseSqlOrThrow(
      "SELECT * FROM privileges WHERE securable_id = ? AND principal = 'bob'");
  ASSERT_EQ(s.select.where.size(), 2u);
  EXPECT_EQ(s.select.where[1].literal, "bob");
  EXPECT_EQ(s.paramCount, 1u);
}

TEST(Parser, InsertUpdateDelete) {
  const Statement ins =
      parseSqlOrThrow("INSERT INTO users VALUES (?, 'amy', 42)");
  EXPECT_EQ(ins.kind, StatementKind::kInsert);
  ASSERT_EQ(ins.insert.values.size(), 3u);
  EXPECT_FALSE(ins.insert.values[0].literal.has_value());
  EXPECT_EQ(ins.insert.values[1].literal, "amy");

  const Statement upd = parseSqlOrThrow(
      "UPDATE users SET name = ?, age = 30 WHERE id = ?");
  EXPECT_EQ(upd.kind, StatementKind::kUpdate);
  ASSERT_EQ(upd.update.assignments.size(), 2u);
  EXPECT_EQ(upd.update.assignments[0].first, "name");
  EXPECT_EQ(upd.paramCount, 2u);

  const Statement del = parseSqlOrThrow("DELETE FROM users WHERE id = 5");
  EXPECT_EQ(del.kind, StatementKind::kDelete);
  ASSERT_EQ(del.del.where.size(), 1u);
}

TEST(Parser, StringLiteralsAndNegativeNumbers) {
  const Statement s = parseSqlOrThrow(
      "INSERT INTO t VALUES ('hello world', -42)");
  EXPECT_EQ(s.insert.values[0].literal, "hello world");
  EXPECT_EQ(s.insert.values[1].literal, "-42");
}

TEST(Parser, ErrorsReported) {
  for (const char* bad :
       {"", "DROP TABLE users", "SELECT FROM", "SELECT * users",
        "INSERT INTO t (1,2)", "UPDATE t WHERE x = 1",
        "SELECT * FROM t WHERE x >" , "SELECT * FROM t LIMIT ?"}) {
    const ParseResult r = parseSql(bad);
    EXPECT_TRUE(std::holds_alternative<ParseError>(r)) << bad;
  }
  EXPECT_THROW((void)parseSqlOrThrow("garbage"), std::invalid_argument);
}

// ---- Planner ----

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : schema_("tables",
                {Column{"id", ColumnType::kInt},
                 Column{"schema_id", ColumnType::kInt},
                 Column{"name", ColumnType::kString}},
                0, {1}),
        planner_([this](std::string_view name) {
          return name == "tables" ? &schema_ : nullptr;
        }) {}

  TableSchema schema_;
  Planner planner_;
};

TEST_F(PlannerTest, PrimaryKeyWinsPointGet) {
  const auto plan = planner_.plan(
      parseSqlOrThrow("SELECT * FROM tables WHERE name = 'x' AND id = ?"));
  const auto& qp = std::get<QueryPlan>(plan);
  EXPECT_EQ(qp.primary.path, AccessPath::kPointGet);
  ASSERT_TRUE(qp.primary.key.has_value());
  EXPECT_EQ(qp.primary.key->columnIndex, 0u);
  EXPECT_EQ(qp.primary.residual.size(), 1u);
}

TEST_F(PlannerTest, SecondaryIndexLookup) {
  const auto plan = planner_.plan(
      parseSqlOrThrow("SELECT * FROM tables WHERE schema_id = ?"));
  EXPECT_EQ(std::get<QueryPlan>(plan).primary.path,
            AccessPath::kIndexLookup);
}

TEST_F(PlannerTest, FallbackTableScan) {
  const auto plan = planner_.plan(
      parseSqlOrThrow("SELECT * FROM tables WHERE name = 'x'"));
  EXPECT_EQ(std::get<QueryPlan>(plan).primary.path, AccessPath::kTableScan);
}

TEST_F(PlannerTest, UnknownTableAndColumnFail) {
  EXPECT_TRUE(std::holds_alternative<PlanError>(
      planner_.plan(parseSqlOrThrow("SELECT * FROM nope WHERE id = 1"))));
  EXPECT_TRUE(std::holds_alternative<PlanError>(
      planner_.plan(parseSqlOrThrow("SELECT bogus FROM tables"))));
  EXPECT_TRUE(std::holds_alternative<PlanError>(planner_.plan(
      parseSqlOrThrow("INSERT INTO tables VALUES (1)"))));  // arity
}

// ---- End-to-end execution ----

class SqlExecution : public ::testing::Test {
 protected:
  SqlExecution()
      : sqlTier_("sql", sim::TierKind::kSqlFrontend, 1),
        kvTier_("kv", sim::TierKind::kKvStorage, 3),
        client_("client", sim::TierKind::kClient),
        channel_(network_, rpc::SerializationModel{}),
        db_(sqlTier_, kvTier_, channel_) {
    db_.createTable(TableSchema("users",
                                {Column{"id", ColumnType::kInt},
                                 Column{"team_id", ColumnType::kInt},
                                 Column{"name", ColumnType::kString}},
                                0, {1}));
    db_.createTable(TableSchema("teams",
                                {Column{"id", ColumnType::kInt},
                                 Column{"title", ColumnType::kString}},
                                0));
  }

  Database::QueryResult exec(std::string_view sql,
                             std::vector<Value> params = {}) {
    return db_.exec(client_, sql, params);
  }

  sim::NetworkModel network_;
  sim::Tier sqlTier_;
  sim::Tier kvTier_;
  sim::Node client_;
  rpc::Channel channel_;
  Database db_;
};

TEST_F(SqlExecution, InsertAndPointSelect) {
  auto ins = exec("INSERT INTO users VALUES (?, ?, ?)",
                  {std::int64_t{1}, std::int64_t{10}, std::string("amy")});
  ASSERT_TRUE(ins.ok) << ins.error;
  EXPECT_EQ(ins.rowsAffected, 1u);

  auto sel = exec("SELECT * FROM users WHERE id = ?", {std::int64_t{1}});
  ASSERT_TRUE(sel.ok) << sel.error;
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(sel.rows[0].at(2)), "amy");
  EXPECT_GT(sel.latencyMicros, 0.0);
}

TEST_F(SqlExecution, IndexLookupFindsAllMatches) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(exec("INSERT INTO users VALUES (?, ?, ?)",
                     {std::int64_t{i}, std::int64_t{i % 3},
                      std::string("u" + std::to_string(i))})
                    .ok);
  }
  auto sel = exec("SELECT * FROM users WHERE team_id = ?", {std::int64_t{1}});
  ASSERT_TRUE(sel.ok);
  EXPECT_EQ(sel.rows.size(), 3u);  // ids 1, 4, 7
}

TEST_F(SqlExecution, ResidualFilterApplies) {
  exec("INSERT INTO users VALUES (1, 10, 'amy')");
  exec("INSERT INTO users VALUES (2, 10, 'bob')");
  auto sel = exec("SELECT * FROM users WHERE team_id = 10 AND name = 'bob'");
  ASSERT_TRUE(sel.ok);
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(valueToInt(sel.rows[0].at(0)), 2);
}

TEST_F(SqlExecution, JoinPointGet) {
  exec("INSERT INTO teams VALUES (10, 'infra')");
  exec("INSERT INTO users VALUES (1, 10, 'amy')");
  auto sel = exec(
      "SELECT name, title FROM users JOIN teams ON users.team_id = teams.id "
      "WHERE id = 1");
  ASSERT_TRUE(sel.ok) << sel.error;
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(sel.rows[0].at(0)), "amy");
  EXPECT_EQ(std::get<std::string>(sel.rows[0].at(1)), "infra");
}

TEST_F(SqlExecution, JoinInnerSemanticsDropUnmatched) {
  exec("INSERT INTO users VALUES (1, 99, 'orphan')");  // no team 99
  auto sel = exec(
      "SELECT name, title FROM users JOIN teams ON users.team_id = teams.id "
      "WHERE id = 1");
  ASSERT_TRUE(sel.ok);
  EXPECT_TRUE(sel.rows.empty());
}

TEST_F(SqlExecution, UpdateMaintainsSecondaryIndex) {
  exec("INSERT INTO users VALUES (1, 10, 'amy')");
  auto upd = exec("UPDATE users SET team_id = ? WHERE id = ?",
                  {std::int64_t{20}, std::int64_t{1}});
  ASSERT_TRUE(upd.ok);
  EXPECT_EQ(upd.rowsAffected, 1u);

  auto oldTeam = exec("SELECT * FROM users WHERE team_id = 10");
  EXPECT_TRUE(oldTeam.rows.empty());
  auto newTeam = exec("SELECT * FROM users WHERE team_id = 20");
  EXPECT_EQ(newTeam.rows.size(), 1u);
}

TEST_F(SqlExecution, DeleteRemovesRowAndIndex) {
  exec("INSERT INTO users VALUES (1, 10, 'amy')");
  auto del = exec("DELETE FROM users WHERE id = 1");
  ASSERT_TRUE(del.ok);
  EXPECT_EQ(del.rowsAffected, 1u);
  EXPECT_TRUE(exec("SELECT * FROM users WHERE id = 1").rows.empty());
  EXPECT_TRUE(exec("SELECT * FROM users WHERE team_id = 10").rows.empty());
}

TEST_F(SqlExecution, LimitBoundsScan) {
  for (int i = 0; i < 20; ++i) {
    exec("INSERT INTO users VALUES (?, 1, 'x')", {std::int64_t{i}});
  }
  auto sel = exec("SELECT * FROM users LIMIT 5");
  ASSERT_TRUE(sel.ok);
  EXPECT_EQ(sel.rows.size(), 5u);
}

TEST_F(SqlExecution, MissingParameterIsError) {
  auto sel = exec("SELECT * FROM users WHERE id = ?");
  EXPECT_FALSE(sel.ok);
  EXPECT_FALSE(sel.error.empty());
}

TEST_F(SqlExecution, ParseAndPlanErrorsSurfaceToClient) {
  auto bad = exec("SELEC nothing");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("parse error"), std::string::npos);
  auto unknown = exec("SELECT * FROM missing WHERE id = 1");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("plan error"), std::string::npos);
}

TEST_F(SqlExecution, ChargesFrontendAndStorage) {
  exec("INSERT INTO users VALUES (1, 10, 'amy')");
  const double sqlBefore = sqlTier_.aggregateCpu().totalMicros();
  const double kvBefore = kvTier_.aggregateCpu().totalMicros();
  exec("SELECT * FROM users WHERE id = 1");
  EXPECT_GT(sqlTier_.aggregateCpu().totalMicros(), sqlBefore);
  EXPECT_GT(kvTier_.aggregateCpu().totalMicros(), kvBefore);
  // Front end did parse/plan work.
  EXPECT_GT(sqlTier_.aggregateCpu().micros(sim::CpuComponent::kQueryParse),
            0.0);
  EXPECT_GT(sqlTier_.aggregateCpu().micros(sim::CpuComponent::kQueryPlan),
            0.0);
  // Storage did KV execution and lease validation (consistent reads).
  EXPECT_GT(kvTier_.aggregateCpu().micros(sim::CpuComponent::kKvExecution),
            0.0);
  EXPECT_GT(
      kvTier_.aggregateCpu().micros(sim::CpuComponent::kLeaseValidation),
      0.0);
}

}  // namespace
}  // namespace dcache::storage
