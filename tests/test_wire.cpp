// Wire codec and RPC message tests: round trips, edge values, malformed
// input, and the encodedSize() = |encode()| property that the cost model
// depends on.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "rpc/batch.hpp"
#include "rpc/messages.hpp"
#include "rpc/wire.hpp"
#include "rpc/wire_size.hpp"
#include "util/rng.hpp"

namespace dcache::rpc {
namespace {

TEST(Wire, VarintEdgeValues) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    WireEncoder enc;
    enc.writeVarint(v);
    WireDecoder dec(enc.view());
    const auto decoded = dec.readVarint();
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(Wire, ZigzagRoundtrip) {
  const std::int64_t cases[] = {
      0, -1, 1, -2, 2, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
  }
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
}

TEST(Wire, AllFieldTypesRoundtrip) {
  WireEncoder enc;
  enc.writeUint(1, 42);
  enc.writeSint(2, -7);
  enc.writeBool(3, true);
  enc.writeFixed64(4, 0xDEADBEEFCAFEF00DULL);
  enc.writeFixed32(5, 0x12345678U);
  enc.writeDouble(6, 3.14159);
  enc.writeBytes(7, std::string_view("payload\0with-nul", 16));

  WireDecoder dec(enc.view());
  auto tag = dec.readTag();
  ASSERT_TRUE(tag && tag->number == 1 && tag->type == WireType::kVarint);
  EXPECT_EQ(dec.readVarint(), 42u);
  tag = dec.readTag();
  ASSERT_TRUE(tag && tag->number == 2);
  EXPECT_EQ(dec.readSint(), -7);
  tag = dec.readTag();
  ASSERT_TRUE(tag);
  EXPECT_EQ(dec.readVarint(), 1u);
  tag = dec.readTag();
  ASSERT_TRUE(tag && tag->type == WireType::kFixed64);
  EXPECT_EQ(dec.readFixed64(), 0xDEADBEEFCAFEF00DULL);
  tag = dec.readTag();
  ASSERT_TRUE(tag && tag->type == WireType::kFixed32);
  EXPECT_EQ(dec.readFixed32(), 0x12345678U);
  tag = dec.readTag();
  ASSERT_TRUE(tag);
  EXPECT_DOUBLE_EQ(*dec.readDouble(), 3.14159);
  tag = dec.readTag();
  ASSERT_TRUE(tag && tag->type == WireType::kLengthDelimited);
  EXPECT_EQ(dec.readBytes()->size(), 16u);
  EXPECT_TRUE(dec.done());
}

TEST(Wire, SkipUnknownFields) {
  WireEncoder enc;
  enc.writeUint(9, 1);
  enc.writeBytes(10, "skipme");
  enc.writeFixed64(11, 5);
  enc.writeFixed32(12, 6);
  enc.writeUint(1, 77);

  WireDecoder dec(enc.view());
  std::uint64_t found = 0;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    ASSERT_TRUE(tag.has_value());
    if (tag->number == 1) {
      found = *dec.readVarint();
    } else {
      ASSERT_TRUE(dec.skip(tag->type));
    }
  }
  EXPECT_EQ(found, 77u);
}

TEST(Wire, TruncatedInputIsRejectedNotUB) {
  WireEncoder enc;
  enc.writeBytes(1, std::string(100, 'x'));
  const std::string full(enc.view());
  // Every strict prefix must decode to nullopt somewhere, never crash.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    WireDecoder dec(std::string_view(full).substr(0, cut));
    while (!dec.done()) {
      const auto tag = dec.readTag();
      if (!tag) break;
      if (!dec.skip(tag->type)) break;
    }
    SUCCEED();
  }
}

TEST(Wire, OverlongVarintRejected) {
  // 11 bytes of continuation flags: longer than any valid 64-bit varint.
  const std::string bad(11, '\xff');
  WireDecoder dec(bad);
  EXPECT_FALSE(dec.readVarint().has_value());
}

TEST(Messages, GetRoundtrip) {
  const GetRequest req{"user:123"};
  WireEncoder enc;
  req.encode(enc);
  EXPECT_EQ(enc.size(), req.encodedSize());
  const auto back = GetRequest::decode(enc.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, "user:123");
}

TEST(Messages, GetResponseRoundtrip) {
  GetResponse resp;
  resp.found = true;
  resp.version = 987654321;
  resp.value = std::string(3000, 'v');
  WireEncoder enc;
  resp.encode(enc);
  EXPECT_EQ(enc.size(), resp.encodedSize());
  const auto back = GetResponse::decode(enc.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->found);
  EXPECT_EQ(back->version, 987654321u);
  EXPECT_EQ(back->value, resp.value);
}

TEST(Messages, PutRoundtrip) {
  const PutRequest req{"k", std::string(500, 'p'), 7};
  WireEncoder enc;
  req.encode(enc);
  EXPECT_EQ(enc.size(), req.encodedSize());
  const auto back = PutRequest::decode(enc.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, "k");
  EXPECT_EQ(back->value.size(), 500u);
  EXPECT_EQ(back->version, 7u);

  const PutResponse resp{true, 8};
  WireEncoder enc2;
  resp.encode(enc2);
  EXPECT_EQ(enc2.size(), resp.encodedSize());
  const auto backResp = PutResponse::decode(enc2.view());
  ASSERT_TRUE(backResp.has_value());
  EXPECT_TRUE(backResp->ok);
  EXPECT_EQ(backResp->version, 8u);
}

TEST(Messages, SqlRoundtrip) {
  const SqlRequest req{"SELECT * FROM tables WHERE id = ?", {"42", "x"}};
  WireEncoder enc;
  req.encode(enc);
  EXPECT_EQ(enc.size(), req.encodedSize());
  const auto back = SqlRequest::decode(enc.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->statement, req.statement);
  EXPECT_EQ(back->params, req.params);

  SqlResponse resp;
  resp.ok = true;
  resp.rows = {"row1", "row2-bytes", ""};
  WireEncoder enc2;
  resp.encode(enc2);
  EXPECT_EQ(enc2.size(), resp.encodedSize());
  const auto backResp = SqlResponse::decode(enc2.view());
  ASSERT_TRUE(backResp.has_value());
  EXPECT_EQ(backResp->rows, resp.rows);
}

TEST(Messages, VersionCheckRoundtripAndTinySize) {
  const VersionCheckRequest req{"table:55"};
  WireEncoder enc;
  req.encode(enc);
  EXPECT_EQ(enc.size(), req.encodedSize());

  const VersionCheckResponse resp{true, 123456};
  WireEncoder enc2;
  resp.encode(enc2);
  EXPECT_EQ(enc2.size(), resp.encodedSize());
  // §5.5: the response is just a found flag + 8-byte version.
  EXPECT_LE(resp.encodedSize(), 16u);
  const auto back = VersionCheckResponse::decode(enc2.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 123456u);
}

TEST(Messages, DecodeRejectsCorruption) {
  GetResponse resp;
  resp.found = true;
  resp.version = 42;
  resp.value = "hello world value";
  WireEncoder enc;
  resp.encode(enc);
  std::string bytes(enc.view());

  util::Pcg32 rng(99, 1);
  int rejected = 0;
  int attempts = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupt = bytes;
    // Flip 1-3 random bytes.
    const int flips = 1 + static_cast<int>(rng.nextBounded(3));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.nextBounded(static_cast<std::uint32_t>(corrupt.size()))] ^=
          static_cast<char>(1 + rng.nextBounded(255));
    }
    ++attempts;
    const auto decoded = GetResponse::decode(corrupt);
    // Either cleanly rejected or decoded to *something* — never UB. Count
    // rejections to make sure validation actually fires.
    if (!decoded.has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(attempts, 500);
}

/// encodedSize() must equal the real encoding across sizes (the simulation
/// charges bytes from encodedSize without materializing buffers).
class MessageSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MessageSizeProperty, PutRequestSizeExact) {
  const std::size_t n = GetParam();
  const PutRequest req{"some-key-name", std::string(n, 'z'), 999};
  WireEncoder enc;
  req.encode(enc);
  EXPECT_EQ(enc.size(), req.encodedSize());
}

TEST_P(MessageSizeProperty, GetResponseSizeExact) {
  const std::size_t n = GetParam();
  GetResponse resp;
  resp.found = n % 2 == 0;
  resp.version = n;
  resp.value = std::string(n, 'q');
  WireEncoder enc;
  resp.encode(enc);
  EXPECT_EQ(enc.size(), resp.encodedSize());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MessageSizeProperty,
                         ::testing::Values(0, 1, 127, 128, 1024, 16384,
                                           1 << 20));

/// The zero-allocation wire_size.hpp helpers must match the real messages
/// exactly for every length — the serve hot path charges bytes from the
/// helpers while tests and the functional paths encode real messages.
class WireSizeEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireSizeEquivalence, HelpersMatchRealMessages) {
  const std::size_t n = GetParam();
  const std::string key(n, 'k');
  const std::string value(n, 'v');

  const GetRequest getReq{key};
  EXPECT_EQ(getRequestWireSize(key.size()), getReq.encodedSize());

  GetResponse getResp;
  getResp.found = true;
  getResp.version = 77;
  getResp.value = value;
  EXPECT_EQ(getResponseWireSize(value.size()), getResp.encodedSize());

  const PutRequest putReq{key, value, 12345};
  EXPECT_EQ(putRequestWireSize(key.size(), value.size()),
            putReq.encodedSize());

  PutResponse putResp;
  putResp.ok = true;
  putResp.version = 9;
  EXPECT_EQ(putResponseWireSize(), putResp.encodedSize());

  VersionCheckRequest vreq;
  vreq.key = key;
  EXPECT_EQ(versionCheckRequestWireSize(key.size()), vreq.encodedSize());

  VersionCheckResponse vresp;
  vresp.found = true;
  vresp.version = 3;
  EXPECT_EQ(versionCheckResponseWireSize(), vresp.encodedSize());
}

INSTANTIATE_TEST_SUITE_P(Lengths, WireSizeEquivalence,
                         ::testing::Values(0, 1, 7, 127, 128, 129, 300, 16383,
                                           16384, 65536));

// --- Batched request buffers ---

TEST(Batch, RoundTripMixedOps) {
  RequestBatch batch;
  batch.appendGet("alpha");
  batch.appendPut("beta", "value-bytes", 42);
  batch.appendInvalidate("gamma");
  batch.appendPut("", "", 0);  // empty key/value is legal on the wire
  ASSERT_EQ(batch.size(), 4u);

  WireEncoder enc;
  batch.encode(enc);
  EXPECT_EQ(enc.size(), batch.encodedSize());

  auto reader = BatchReader::decode(enc.view());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->expectedCount(), 4u);

  BatchItem item;
  ASSERT_TRUE(reader->next(item));
  EXPECT_EQ(item.op, BatchOp::kGet);
  EXPECT_EQ(item.key, "alpha");

  ASSERT_TRUE(reader->next(item));
  EXPECT_EQ(item.op, BatchOp::kPut);
  EXPECT_EQ(item.key, "beta");
  EXPECT_EQ(item.value, "value-bytes");
  EXPECT_EQ(item.version, 42u);

  ASSERT_TRUE(reader->next(item));
  EXPECT_EQ(item.op, BatchOp::kInvalidate);
  EXPECT_EQ(item.key, "gamma");

  ASSERT_TRUE(reader->next(item));
  EXPECT_EQ(item.op, BatchOp::kPut);
  EXPECT_TRUE(item.key.empty());
  EXPECT_TRUE(item.value.empty());
  EXPECT_EQ(item.version, 0u);

  EXPECT_FALSE(reader->next(item));
  EXPECT_TRUE(reader->ok());
  EXPECT_EQ(reader->consumed(), 4u);
}

TEST(Batch, ClearKeepsNothingButReuses) {
  RequestBatch batch;
  batch.appendGet("one");
  batch.clear();
  EXPECT_TRUE(batch.empty());
  batch.appendInvalidate("two");
  WireEncoder enc;
  batch.encode(enc);
  auto reader = BatchReader::decode(enc.view());
  ASSERT_TRUE(reader.has_value());
  BatchItem item;
  ASSERT_TRUE(reader->next(item));
  EXPECT_EQ(item.op, BatchOp::kInvalidate);
  EXPECT_EQ(item.key, "two");
  EXPECT_FALSE(reader->next(item));
}

TEST(Batch, PerOpSizeHelpersMatchArenaGrowth) {
  RequestBatch batch;
  std::uint64_t predicted = 0;
  const std::string shortKey = "k";
  const std::string longKey(300, 'K');  // multi-byte varint length
  const std::string value(200, 'v');

  batch.appendGet(shortKey);
  predicted += batchKeyOpWireSize(shortKey.size());
  batch.appendInvalidate(longKey);
  predicted += batchKeyOpWireSize(longKey.size());
  batch.appendPut(longKey, value, 7);
  predicted += batchPutOpWireSize(longKey.size(), value.size());

  EXPECT_EQ(batch.records().size(), predicted);
}

TEST(Batch, DecodeRejectsMalformedBytes) {
  RequestBatch batch;
  batch.appendPut("key", "value", 1);
  WireEncoder enc;
  batch.encode(enc);
  const std::string bytes(enc.view());

  // Truncations anywhere must fail cleanly: either decode() refuses or the
  // reader stops with ok() == false — never UB, never a fabricated record.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto reader = BatchReader::decode(bytes.substr(0, cut));
    if (!reader.has_value()) continue;
    BatchReader r = *reader;
    BatchItem item;
    std::uint32_t yielded = 0;
    while (r.next(item)) ++yielded;
    EXPECT_TRUE(yielded == 0 || !r.ok() || yielded < r.expectedCount())
        << "cut " << cut;
  }

  // A batch whose claimed count exceeds what one byte per record allows is
  // rejected up front.
  WireEncoder lying;
  lying.writeUint(1, 100);
  lying.writeBytes(2, "xx");
  EXPECT_FALSE(BatchReader::decode(lying.view()).has_value());

  // An op byte outside the enum poisons the reader.
  WireEncoder badOp;
  badOp.writeUint(1, 1);
  badOp.writeBytes(2, std::string(1, '\x7f'));
  auto reader = BatchReader::decode(badOp.view());
  ASSERT_TRUE(reader.has_value());
  BatchItem item;
  EXPECT_FALSE(reader->next(item));
  EXPECT_FALSE(reader->ok());
}

}  // namespace
}  // namespace dcache::rpc
