// Database facade tests: the KV fast path, version checks (§5.5 cost
// shape), replication accounting, block-cache effects and the conservation
// property that every microsecond charged lands in exactly one
// (node, component) cell.
#include <gtest/gtest.h>

#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"

namespace dcache::storage {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest()
      : sqlTier_("sql", sim::TierKind::kSqlFrontend, 3),
        kvTier_("kv", sim::TierKind::kKvStorage, 3),
        client_("client", sim::TierKind::kClient),
        channel_(network_, rpc::SerializationModel{}),
        db_(sqlTier_, kvTier_, channel_) {}

  [[nodiscard]] double totalCpu() const {
    return sqlTier_.aggregateCpu().totalMicros() +
           kvTier_.aggregateCpu().totalMicros() +
           client_.cpu().totalMicros();
  }

  sim::NetworkModel network_;
  sim::Tier sqlTier_;
  sim::Tier kvTier_;
  sim::Node client_;
  rpc::Channel channel_;
  Database db_;
};

TEST_F(DatabaseTest, ReadAfterLoad) {
  db_.loadValue("k1", 4096);
  const auto read = db_.readValue(client_, "k1");
  EXPECT_TRUE(read.found);
  EXPECT_EQ(read.size, 4096u);
  EXPECT_GT(read.version, 0u);
  EXPECT_GT(read.latencyMicros, 0.0);

  const auto missing = db_.readValue(client_, "nope");
  EXPECT_FALSE(missing.found);
}

TEST_F(DatabaseTest, WriteBumpsVersionMonotonically) {
  const auto w1 = db_.writeValue(client_, "k", 100);
  const auto w2 = db_.writeValue(client_, "k", 200);
  EXPECT_GT(w2.version, w1.version);
  const auto read = db_.readValue(client_, "k");
  EXPECT_EQ(read.size, 200u);
  EXPECT_EQ(read.version, w2.version);
}

TEST_F(DatabaseTest, WritesChargeReplicationOnFollowers) {
  db_.writeValue(client_, "k", 1000);
  // Leader + both followers must show replication CPU (3-way groups).
  std::size_t replicasCharged = 0;
  for (std::size_t i = 0; i < kvTier_.size(); ++i) {
    if (kvTier_.node(i).cpu().micros(sim::CpuComponent::kReplication) > 0.0) {
      ++replicasCharged;
    }
  }
  EXPECT_EQ(replicasCharged, 3u);
  EXPECT_EQ(db_.raft().committedIndex(), 1u);
}

TEST_F(DatabaseTest, SecondReadHitsBlockCache) {
  db_.loadValue("hot", 8192);
  const auto first = db_.readValue(client_, "hot");   // cold: disk
  const double diskAfterFirst = kvTier_.aggregateCpu().micros(
      sim::CpuComponent::kDiskIo);
  EXPECT_GT(diskAfterFirst, 0.0);
  const auto second = db_.readValue(client_, "hot");  // warm: block cache
  EXPECT_DOUBLE_EQ(
      kvTier_.aggregateCpu().micros(sim::CpuComponent::kDiskIo),
      diskAfterFirst);
  EXPECT_LT(second.latencyMicros, first.latencyMicros);
  EXPECT_EQ(db_.blockCacheHits(), 1u);
  EXPECT_EQ(db_.blockCacheMisses(), 1u);
}

TEST_F(DatabaseTest, VersionCheckReturnsTinyResponseButPaysFullPath) {
  db_.loadValue("k", 100000);  // 100 KB row
  db_.readValue(client_, "k");  // warm the block cache

  network_.clearCounters();
  const std::uint64_t bytesBefore = network_.bytesSent();
  const double sqlBefore = sqlTier_.aggregateCpu().totalMicros();

  const auto check = db_.versionCheck(client_, "k");
  EXPECT_TRUE(check.found);
  EXPECT_GT(check.version, 0u);

  // The SQL front end paid parse/plan again — the §5.5 point.
  EXPECT_GT(sqlTier_.aggregateCpu().totalMicros(), sqlBefore + 50.0);
  // The row (100 KB) crossed the front-end <-> KV hop even though the
  // client got only a handful of bytes back.
  EXPECT_GT(network_.bytesSent() - bytesBefore, 100000u);
}

TEST_F(DatabaseTest, VersionCheckCheaperThanFullReadButComparable) {
  db_.loadValue("k", 65536);
  db_.readValue(client_, "k");  // warm
  sim::Tier probeTier("probe", sim::TierKind::kAppServer, 1);
  sim::Node& probe = probeTier.node(0);

  // Measure the app-visible CPU of a read vs a version check.
  const auto read = db_.readValue(probe, "k");
  const double cpuAfterRead = probe.cpu().totalMicros();
  const auto check = db_.versionCheck(probe, "k");
  const double checkCpu = probe.cpu().totalMicros() - cpuAfterRead;
  EXPECT_GT(read.latencyMicros, 0.0);
  EXPECT_GT(check.latencyMicros, 0.0);
  // The check saves the client-side value deserialization…
  EXPECT_LT(checkCpu, cpuAfterRead);
  // …but is nowhere near free (it is a full storage round trip).
  EXPECT_GT(checkCpu, cpuAfterRead * 0.1);
}

TEST_F(DatabaseTest, VersionCheckRowAndPeek) {
  db_.createTable(TableSchema("t",
                              {Column{"id", ColumnType::kInt},
                               Column{"v", ColumnType::kString}},
                              0));
  db_.loadRow("t", Row{{std::int64_t{7}, std::string("x")}});
  const auto peek = db_.peekRowVersion("t", "7");
  ASSERT_TRUE(peek.has_value());

  const auto check = db_.versionCheckRow(client_, "t", "7");
  EXPECT_TRUE(check.found);
  EXPECT_EQ(check.version, *peek);

  EXPECT_FALSE(db_.peekRowVersion("t", "8").has_value());
  EXPECT_FALSE(db_.versionCheckRow(client_, "t", "8").found);
}

TEST_F(DatabaseTest, PeekValueVersionMatchesRead) {
  db_.writeValue(client_, "k", 10);
  const auto read = db_.readValue(client_, "k");
  EXPECT_EQ(db_.peekValueVersion("k"), read.version);
}

TEST_F(DatabaseTest, CpuConservation) {
  // Total CPU across nodes equals the sum over all (node, component)
  // cells — no work is double-counted or lost.
  db_.loadValue("k", 2048);
  for (int i = 0; i < 10; ++i) {
    db_.readValue(client_, "k");
    db_.writeValue(client_, "k", 2048);
    db_.versionCheck(client_, "k");
  }
  for (const sim::Tier* tier : {&sqlTier_, &kvTier_}) {
    for (std::size_t n = 0; n < tier->size(); ++n) {
      const sim::CpuMeter& cpu = tier->node(n).cpu();
      double sum = 0.0;
      for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
        sum += cpu.micros(static_cast<sim::CpuComponent>(c));
      }
      EXPECT_NEAR(sum, cpu.totalMicros(), 1e-6);
    }
  }
}

TEST_F(DatabaseTest, StoredBytesTrackLiveData) {
  db_.loadValue("a", 1000);
  db_.loadValue("b", 500);
  EXPECT_EQ(db_.totalStoredBytes().count(), 1500u);
  db_.writeValue(client_, "a", 100);  // replaces
  EXPECT_EQ(db_.totalStoredBytes().count(), 600u);
}

TEST_F(DatabaseTest, GcReclaimsVersions) {
  for (int i = 0; i < 5; ++i) db_.writeValue(client_, "k", 10);
  EXPECT_GT(db_.runGc(1), 0u);
  EXPECT_TRUE(db_.readValue(client_, "k").found);
}

TEST_F(DatabaseTest, InconsistentReadsSkipLeaseValidation) {
  Database::Config config;
  config.consistentReads = false;
  sim::Tier sqlTier("sql2", sim::TierKind::kSqlFrontend, 1);
  sim::Tier kvTier("kv2", sim::TierKind::kKvStorage, 3);
  Database db(sqlTier, kvTier, channel_, config);
  db.loadValue("k", 100);
  db.readValue(client_, "k");
  EXPECT_DOUBLE_EQ(
      kvTier.aggregateCpu().micros(sim::CpuComponent::kLeaseValidation), 0.0);
}

}  // namespace
}  // namespace dcache::storage
