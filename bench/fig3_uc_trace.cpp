// Figure 3 — Unity Catalog trace analysis (§5.2).
//   (a) Value-size distribution: median ≈ 23KB with large values at the
//       tail (multi-MB objects).
//   (b) Access-frequency distribution: Zipf-like rank-frequency skew.
// Also reports the read ratio (≈93%) and the getTable query-amplification
// histogram (up to 8 SQL statements per read).
// The two panels replay the same deterministic trace stream independently,
// so they run as parallel cells on the worker pool.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/matrix.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

constexpr int kOps = 400000;

/// Read-side statistics: sizes, amplification, read ratio (panel a).
struct ReadStats {
  std::vector<double> sizes;
  std::map<std::size_t, std::uint64_t> statements;
  std::uint64_t reads = 0;
  std::uint64_t keyCount = 0;
};

/// Per-key access counts (panel b).
struct FrequencyStats {
  std::map<std::uint64_t, std::uint64_t> frequency;
};

ReadStats collectReadStats(const workload::UcTraceConfig& config) {
  workload::UcTraceWorkload trace(config);
  ReadStats stats;
  stats.keyCount = trace.keyCount();
  for (int i = 0; i < kOps; ++i) {
    const workload::Op op = trace.next();
    if (op.isRead()) {
      ++stats.reads;
      stats.sizes.push_back(static_cast<double>(op.valueSize));
      ++stats.statements[trace.statementsFor(op.keyIndex)];
    }
  }
  return stats;
}

FrequencyStats collectFrequencyStats(const workload::UcTraceConfig& config) {
  workload::UcTraceWorkload trace(config);
  FrequencyStats stats;
  for (int i = 0; i < kOps; ++i) {
    ++stats.frequency[trace.next().keyIndex];
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  workload::UcTraceConfig config;  // paper parameters
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  util::ThreadPool pool(benchOptions.matrix.jobs);

  // Both passes replay the identical seeded stream; fan them out.
  ReadStats readStats;
  FrequencyStats frequencyStats;
  // dcache-lint: allow(race-capture, fork-join sole writer, joined below)
  pool.submit([&readStats, &config] { readStats = collectReadStats(config); });
  // dcache-lint: allow(race-capture, fork-join sole writer, joined below)
  pool.submit([&frequencyStats, &config] {
    frequencyStats = collectFrequencyStats(config);
  });
  pool.wait();

  std::printf("Unity Catalog synthetic trace: %d ops over %llu tables, "
              "read ratio %.1f%% (paper: ~93%%)\n\n",
              kOps, static_cast<unsigned long long>(readStats.keyCount),
              100.0 * static_cast<double>(readStats.reads) / kOps);

  util::TablePrinter sizeTable({"percentile", "object size"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    sizeTable.addRow(
        {util::TablePrinter::toCell(q),
         util::Bytes::of(static_cast<std::uint64_t>(
                             util::exactQuantile(readStats.sizes, q)))
             .str()});
  }
  sizeTable.print("Figure 3a: value-size distribution (median should be "
                  "~23KB with an MB-scale tail)");

  // Rank-frequency: sort key counts descending, fit the log-log slope.
  std::vector<double> counts;
  counts.reserve(frequencyStats.frequency.size());
  for (const auto& [key, count] : frequencyStats.frequency) {
    counts.push_back(static_cast<double>(count));
  }
  std::sort(counts.rbegin(), counts.rend());
  util::TablePrinter freqTable({"rank", "accesses", "share"});
  for (const std::size_t rank : {1u, 2u, 5u, 10u, 100u, 1000u, 10000u}) {
    if (rank > counts.size()) break;
    char share[16];
    std::snprintf(share, sizeof share, "%.3f%%",
                  100.0 * counts[rank - 1] / kOps);
    freqTable.addRow({util::TablePrinter::toCell(
                          static_cast<unsigned long long>(rank)),
                      util::TablePrinter::toCell(counts[rank - 1]), share});
  }
  std::vector<double> ranks(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ranks[i] = static_cast<double>(i + 1);
  }
  freqTable.print("\nFigure 3b: access-frequency distribution");
  std::printf("fitted rank-frequency log-log slope: %.3f (configured "
              "alpha: -%.2f)\n",
              util::logLogSlope(ranks, counts), config.alpha);

  util::TablePrinter ampTable({"SQL statements per getTable", "reads"});
  for (const auto& [n, count] : readStats.statements) {
    ampTable.addRow({util::TablePrinter::toCell(
                         static_cast<unsigned long long>(n)),
                     util::TablePrinter::toCell(count)});
  }
  ampTable.print("\nQuery amplification (getTable translates to up to 8 "
                 "SQL statements, §5.2)");
  if (!benchOptions.metricsOut.empty()) {
    // Trace-analysis bench: no deployments, so export the distribution's
    // headline statistics directly.
    obs::MetricsRegistry registry;
    registry.setCounter("fig3.ops", static_cast<std::uint64_t>(kOps));
    registry.setCounter("fig3.tables", readStats.keyCount);
    registry.setGauge("fig3.read_ratio",
                      static_cast<double>(readStats.reads) / kOps);
    registry.setGauge("fig3.size_p50_bytes",
                      util::exactQuantile(readStats.sizes, 0.50));
    registry.setGauge("fig3.size_p99_bytes",
                      util::exactQuantile(readStats.sizes, 0.99));
    registry.setGauge("fig3.rank_frequency_slope",
                      util::logLogSlope(ranks, counts));
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
