// Figure 3 — Unity Catalog trace analysis (§5.2).
//   (a) Value-size distribution: median ≈ 23KB with large values at the
//       tail (multi-MB objects).
//   (b) Access-frequency distribution: Zipf-like rank-frequency skew.
// Also reports the read ratio (≈93%) and the getTable query-amplification
// histogram (up to 8 SQL statements per read).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "util/bytes.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

int main() {
  workload::UcTraceConfig config;  // paper parameters
  workload::UcTraceWorkload trace(config);

  constexpr int kOps = 400000;
  std::vector<double> sizes;
  std::map<std::uint64_t, std::uint64_t> frequency;
  std::map<std::size_t, std::uint64_t> statements;
  std::uint64_t reads = 0;
  for (int i = 0; i < kOps; ++i) {
    const workload::Op op = trace.next();
    if (op.isRead()) {
      ++reads;
      sizes.push_back(static_cast<double>(op.valueSize));
      ++statements[trace.statementsFor(op.keyIndex)];
    }
    ++frequency[op.keyIndex];
  }

  std::printf("Unity Catalog synthetic trace: %d ops over %llu tables, "
              "read ratio %.1f%% (paper: ~93%%)\n\n",
              kOps, static_cast<unsigned long long>(trace.keyCount()),
              100.0 * static_cast<double>(reads) / kOps);

  util::TablePrinter sizeTable({"percentile", "object size"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    sizeTable.addRow(
        {util::TablePrinter::toCell(q),
         util::Bytes::of(static_cast<std::uint64_t>(
                             util::exactQuantile(sizes, q)))
             .str()});
  }
  sizeTable.print("Figure 3a: value-size distribution (median should be "
                  "~23KB with an MB-scale tail)");

  // Rank-frequency: sort key counts descending, fit the log-log slope.
  std::vector<double> counts;
  counts.reserve(frequency.size());
  for (const auto& [key, count] : frequency) {
    counts.push_back(static_cast<double>(count));
  }
  std::sort(counts.rbegin(), counts.rend());
  util::TablePrinter freqTable({"rank", "accesses", "share"});
  for (const std::size_t rank : {1u, 2u, 5u, 10u, 100u, 1000u, 10000u}) {
    if (rank > counts.size()) break;
    char share[16];
    std::snprintf(share, sizeof share, "%.3f%%",
                  100.0 * counts[rank - 1] / kOps);
    freqTable.addRow({util::TablePrinter::toCell(
                          static_cast<unsigned long long>(rank)),
                      util::TablePrinter::toCell(counts[rank - 1]), share});
  }
  std::vector<double> ranks(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ranks[i] = static_cast<double>(i + 1);
  }
  freqTable.print("\nFigure 3b: access-frequency distribution");
  std::printf("fitted rank-frequency log-log slope: %.3f (configured "
              "alpha: -%.2f)\n",
              util::logLogSlope(ranks, counts), config.alpha);

  util::TablePrinter ampTable({"SQL statements per getTable", "reads"});
  for (const auto& [n, count] : statements) {
    ampTable.addRow({util::TablePrinter::toCell(
                         static_cast<unsigned long long>(n)),
                     util::TablePrinter::toCell(count)});
  }
  ampTable.print("\nQuery amplification (getTable translates to up to 8 "
                 "SQL statements, §5.2)");
  return 0;
}
