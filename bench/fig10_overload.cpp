// Figure 10 — overload and metastability: what a traffic surge actually
// costs each architecture, and what the standard defenses buy back. Every
// tier gets a finite capacity (self-calibrated to 2x its steady-state CPU
// demand — the usual ~50% utilization provisioning target), so latency is
// service + queueing delay and a saturated tier rejects or times out. Each
// architecture then runs the same timeline twice, defenses off and on:
//
//   window 0-1  steady state (~50% utilization)
//   window 2-3  open-loop arrival surge: --surge x the offered QPS
//   window 4-5  hot-key storm: half of all reads hammer one key
//   window 6-7  recovery at steady load
//
// With defenses off, the retry path amplifies the collapse: every attempt
// abandoned by a client timeout still occupies the queue it timed out in —
// the classic metastable failure. Defenses on arms (1) CoDel-style
// admission control at the app tier (writes are never shed), (2)
// per-destination circuit breakers, (3) hedged requests against the p99
// tracker, and (4) a per-call deadline budget. Per window the bench
// reports p50/p99 (queueing included), goodput, shed/queue-timeout rates,
// breaker and hedge activity, and the retry-storm amplification factor;
// the summary prices the provisioning headroom (extra app nodes -> extra
// $) needed to hold the surge instead. Every cell is seeded from (--seed,
// cell index) alone, so output is byte-identical for any --jobs value.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/matrix.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/surge.hpp"

using namespace dcache;

namespace {

// Sweep roster: the kDisaggregated tail rides behind the --disagg gate
// (bench::sweepArchitectures strips it, restoring the original cells).
constexpr core::Architecture kArchs[] = {
    core::Architecture::kBase, core::Architecture::kRemote,
    core::Architecture::kLinked, core::Architecture::kLinkedVersion,
    core::Architecture::kDisaggregated};

constexpr std::size_t kWindows = 8;
constexpr const char* kPhases[kWindows] = {"steady", "steady", "surge",
                                           "surge",  "hotkey", "hotkey",
                                           "recover", "recover"};
/// Provisioning headroom the capacities are calibrated to: every tier can
/// absorb 2x its steady CPU demand before queueing starts.
constexpr double kHeadroomFactor = 2.0;
constexpr double kHotKeyFraction = 0.5;

struct Fig10Options {
  double surgeMultiplier = 10.0;
  bool shed = true;
  bool breakers = true;
  bool hedge = true;
};

/// fig10-specific flags (--surge X, --shed 0|1, --breaker 0|1, --hedge
/// 0|1); the shared flags were already consumed by parseBenchOptions.
Fig10Options parseFig10Options(int argc, char** argv) {
  Fig10Options options;
  const auto value = [&](int& i, std::string_view arg,
                         std::string_view flag) -> const char* {
    if (arg == flag) {
      if (i + 1 < argc) return argv[++i];
      return nullptr;
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = value(i, arg, "--surge")) {
      options.surgeMultiplier = std::strtod(v, nullptr);
    } else if (const char* v = value(i, arg, "--shed")) {
      options.shed = std::strtoull(v, nullptr, 10) != 0;
    } else if (const char* v = value(i, arg, "--breaker")) {
      options.breakers = std::strtoull(v, nullptr, 10) != 0;
    } else if (const char* v = value(i, arg, "--hedge")) {
      options.hedge = std::strtoull(v, nullptr, 10) != 0;
    }
  }
  return options;
}

/// Op counts, honoring the DCACHE_GOLDEN_OPS fast mode.
struct OpBudget {
  std::uint64_t warmupOps;
  std::uint64_t windowOps;
  std::uint64_t calibrateWarmOps;
  std::uint64_t calibrateOps;
};

OpBudget opBudget() {
  if (const std::uint64_t cap = core::goldenOpsCap(); cap > 0) {
    return {cap * 4, cap, cap, cap};
  }
  return {120000, 30000, 60000, 30000};
}

/// Per-tier steady CPU demand, measured by running the steady workload
/// against an *unconstrained* deployment — the denominator the capacities
/// are provisioned from. Per-node µs of CPU per simulated second.
struct TierDemand {
  double appMicrosPerSec = 0.0;
  double remoteMicrosPerSec = 0.0;
  double sqlMicrosPerSec = 0.0;
  double kvMicrosPerSec = 0.0;
};

TierDemand calibrateDemand(core::Architecture arch, const OpBudget& budget) {
  core::DeploymentConfig config;
  config.architecture = arch;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < budget.calibrateWarmOps; ++i) serveOne();
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < budget.calibrateOps; ++i) serveOne();

  const double seconds =
      static_cast<double>(budget.calibrateOps) / bench::kSyntheticQps;
  TierDemand demand;
  for (const sim::Tier* tier : deployment.tiers()) {
    const double perNodeMicrosPerSec = tier->aggregateCpu().totalMicros() /
                                 seconds /
                                 static_cast<double>(tier->size());
    switch (tier->kind()) {
      case sim::TierKind::kAppServer:
        demand.appMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kRemoteCache:
        demand.remoteMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kSqlFrontend:
        demand.sqlMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kKvStorage:
        demand.kvMicrosPerSec = perNodeMicrosPerSec;
        break;
      default:
        break;
    }
  }
  return demand;
}

struct WindowRow {
  double p50Micros = 0.0;
  double p99Micros = 0.0;
  double goodput = 1.0;  // fraction of ops answered (not shed, not failed)
  double hitRatio = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t queueTimeouts = 0;  // timeouts + full-queue rejections
  std::uint64_t breakerOpens = 0;
  std::uint64_t breakerShortCircuits = 0;
  std::uint64_t hedgesSent = 0;
  std::uint64_t hedgeWins = 0;
  std::uint64_t retries = 0;
  std::uint64_t failedOps = 0;
  double amplification = 1.0;  // RPC attempts per op vs the no-retry floor
  double appCpuMicros = 0.0;
  double windowSeconds = 0.0;
  util::Money cost;
};

struct CellResult {
  std::string architecture;
  bool defenses = false;
  double appCapacityPerNode = 0.0;
  std::size_t appServers = 0;
  util::Money steadyAppComputeCost;
  std::vector<WindowRow> windows;
  obs::TraceSummary trace;  // final window only (clearMeters resets it)
};

CellResult runOverloadCell(std::size_t index, std::uint64_t rootSeed,
                           const Fig10Options& options, const OpBudget& budget,
                           const std::vector<core::Architecture>& archs) {
  const core::Architecture arch = archs[index % archs.size()];
  const bool defenses = index >= archs.size();
  const TierDemand demand = calibrateDemand(arch, budget);

  core::DeploymentConfig config;
  config.architecture = arch;
  config.faultSeed = core::cellSeed(rootSeed, index);
  config.overload.appCapacityMicrosPerSec =
      demand.appMicrosPerSec * kHeadroomFactor;
  config.overload.remoteCacheCapacityMicrosPerSec =
      demand.remoteMicrosPerSec * kHeadroomFactor;
  config.overload.sqlCapacityMicrosPerSec =
      demand.sqlMicrosPerSec * kHeadroomFactor;
  config.overload.kvCapacityMicrosPerSec =
      demand.kvMicrosPerSec * kHeadroomFactor;
  if (defenses) {
    if (options.shed) {
      config.overload.shed.enabled = true;
      // Stabilize the queue below the RPC timeout cliff: start shedding at
      // half the timeout, ramp to the cap within another timeout's worth.
      config.overload.shed.targetDelayMicros =
          config.rpcPolicy.timeoutMicros * 0.5;
      config.overload.shed.graceMicros = config.rpcPolicy.timeoutMicros;
      config.overload.shed.rampMicros = config.rpcPolicy.timeoutMicros;
    }
    config.overload.breakersEnabled = options.breakers;
    config.overload.breaker.openMicros = 20000.0;
    config.overload.hedgingEnabled = options.hedge;
    // Satellite defense: a per-call budget stops a doomed call after ~2
    // timeouts' worth of waiting instead of burning the whole ladder.
    config.rpcPolicy.deadlineMicros = config.rpcPolicy.timeoutMicros * 2.5;
  }
  config = bench::withBenchTrace(config);
  core::Deployment deployment(config);

  std::vector<workload::SurgePhase> phases;
  phases.push_back({budget.warmupOps, 1.0, 0.0, 0, "warmup"});
  for (std::size_t w = 0; w < kWindows; ++w) {
    workload::SurgePhase phase;
    phase.ops = budget.windowOps;
    phase.name = kPhases[w];
    if (w == 2 || w == 3) phase.qpsMultiplier = options.surgeMultiplier;
    if (w == 4 || w == 5) {
      phase.hotKeyFraction = kHotKeyFraction;
      phase.hotKey = 0;
    }
    phases.push_back(phase);
  }
  workload::SurgeWorkload workload{workload::SyntheticConfig{},
                                   std::move(phases),
                                   core::cellSeed(rootSeed, index + 100)};
  deployment.populateKv(workload);

  double simMicros = 0.0;
  auto serveOne = [&] {
    // Open-loop arrivals: the surge multiplier compresses inter-arrival
    // time, it does not wait for the system to keep up — that gap is the
    // whole overload story.
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(simMicros));
    simMicros +=
        1e6 / (bench::kSyntheticQps * workload.currentPhase().qpsMultiplier);
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < budget.warmupOps; ++i) serveOne();

  const core::ExperimentConfig experiment;  // pricing + utilization defaults
  const core::CostModel model(experiment.pricing,
                              experiment.targetUtilization);

  CellResult cell;
  cell.architecture = std::string(core::architectureName(arch));
  cell.defenses = defenses;
  cell.appCapacityPerNode = config.overload.appCapacityMicrosPerSec;
  cell.appServers = config.appServers;
  for (std::size_t w = 0; w < kWindows; ++w) {
    deployment.clearMeters();
    const double windowStartMicros = simMicros;
    for (std::uint64_t i = 0; i < budget.windowOps; ++i) serveOne();
    const core::ServeCounters& c = deployment.counters();
    WindowRow row;
    row.p50Micros = deployment.latencies().p50();
    row.p99Micros = deployment.latencies().p99();
    const double ops = static_cast<double>(budget.windowOps);
    row.goodput =
        (ops - static_cast<double>(c.sheddedRequests + c.failedOps)) / ops;
    row.hitRatio = c.hitRatio();
    row.shed = c.sheddedRequests;
    row.queueTimeouts = c.queueTimeouts + c.queueRejections;
    row.breakerOpens = c.breakerOpens;
    row.breakerShortCircuits = c.breakerShortCircuits;
    row.hedgesSent = c.hedgesSent;
    row.hedgeWins = c.hedgeWins;
    row.retries = c.retries;
    row.failedOps = c.failedOps;
    row.amplification = 1.0 + static_cast<double>(c.retries) / ops;
    row.windowSeconds = (simMicros - windowStartMicros) * 1e-6;
    for (const sim::Tier* tier : deployment.tiers()) {
      if (tier->kind() == sim::TierKind::kAppServer) {
        row.appCpuMicros = tier->aggregateCpu().totalMicros();
      }
    }
    const core::CostBreakdown breakdown =
        model.breakdown(deployment.tiers(), row.windowSeconds,
                        deployment.db().totalStoredBytes(),
                        config.replicationFactor);
    row.cost = breakdown.totalCost;
    if (w == 0) {
      if (const core::TierUsage* appUsage =
              breakdown.tier(sim::TierKind::kAppServer)) {
        cell.steadyAppComputeCost = appUsage->computeCost;
      }
    }
    cell.windows.push_back(row);
  }
  if (const obs::Tracer* tracer = deployment.tracer()) {
    cell.trace = tracer->summary();
  }
  return cell;
}

void printCell(const CellResult& cell, const OpBudget& budget) {
  util::TablePrinter table({"window", "phase", "p50_us", "p99_us", "goodput",
                            "hit_ratio", "shed", "queue_to", "brk_open",
                            "brk_sc", "hedges", "hedge_wins", "retries",
                            "failed", "amp", "window_cost"});
  for (std::size_t w = 0; w < cell.windows.size(); ++w) {
    const WindowRow& row = cell.windows[w];
    table.row(static_cast<unsigned long long>(w), kPhases[w], row.p50Micros,
              row.p99Micros, row.goodput, row.hitRatio,
              static_cast<unsigned long long>(row.shed),
              static_cast<unsigned long long>(row.queueTimeouts),
              static_cast<unsigned long long>(row.breakerOpens),
              static_cast<unsigned long long>(row.breakerShortCircuits),
              static_cast<unsigned long long>(row.hedgesSent),
              static_cast<unsigned long long>(row.hedgeWins),
              static_cast<unsigned long long>(row.retries),
              static_cast<unsigned long long>(row.failedOps),
              row.amplification, row.cost.str());
  }
  char title[160];
  std::snprintf(title, sizeof title,
                "\nFigure 10 [%s, defenses=%s]: overload timeline (%lluK-op "
                "windows, capacity=%.0fx steady)",
                cell.architecture.c_str(), cell.defenses ? "on" : "off",
                static_cast<unsigned long long>(budget.windowOps / 1000),
                kHeadroomFactor);
  table.print(title);
}

/// Worst (highest) amplification across the overloaded windows 2-5.
double worstAmplification(const CellResult& cell) {
  double worst = 0.0;
  for (std::size_t w = 2; w <= 5 && w < cell.windows.size(); ++w) {
    worst = std::max(worst, cell.windows[w].amplification);
  }
  return worst;
}

double worstP99(const CellResult& cell) {
  double worst = 0.0;
  for (std::size_t w = 2; w <= 5 && w < cell.windows.size(); ++w) {
    worst = std::max(worst, cell.windows[w].p99Micros);
  }
  return worst;
}

double worstGoodput(const CellResult& cell) {
  double worst = 1.0;
  for (std::size_t w = 2; w <= 5 && w < cell.windows.size(); ++w) {
    worst = std::min(worst, cell.windows[w].goodput);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  const Fig10Options fig10 = parseFig10Options(argc, argv);
  const core::MatrixOptions& options = benchOptions.matrix;
  const OpBudget budget = opBudget();

  util::ThreadPool pool(options.jobs);
  const std::vector<core::Architecture> archs =
      bench::sweepArchitectures(kArchs);
  const std::size_t cellCount = 2 * archs.size();
  const std::vector<CellResult> cells =
      util::mapOrdered(pool, cellCount,
                       [&options, &fig10, &budget, &archs](std::size_t i) {
                         return runOverloadCell(i, options.rootSeed, fig10,
                                                budget, archs);
                       });
  pool.wait();

  for (const CellResult& cell : cells) printCell(cell, budget);

  // The metastability verdict: how much work the retry path multiplies the
  // surge into, with and without the defenses, and what the defenses keep.
  util::TablePrinter verdict({"architecture", "amp_off", "amp_on", "p99_off",
                              "p99_on", "goodput_off", "goodput_on"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& off = cells[a];
    const CellResult& on = cells[a + archs.size()];
    verdict.row(off.architecture, worstAmplification(off),
                worstAmplification(on), worstP99(off), worstP99(on),
                worstGoodput(off), worstGoodput(on));
  }
  char verdictTitle[160];
  std::snprintf(verdictTitle, sizeof verdictTitle,
                "\nFigure 10 summary: worst overloaded window (2-5) at "
                "%.0fx surge, defenses off vs on",
                fig10.surgeMultiplier);
  verdict.print(verdictTitle);

  // Provisioning headroom: the other way to survive the surge is to buy
  // enough app servers that the peak fits under capacity. Demand is
  // measured on the *bare* cells — without defenses the retry storm is
  // part of the load you must provision for.
  util::TablePrinter headroom({"architecture", "steady_cost", "peak_cost",
                               "peak_phase", "headroom_delta",
                               "extra_app_nodes", "extra_app_cost"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& cell = cells[a];
    const util::Money steady = cell.windows.front().cost;
    util::Money peak = steady;
    std::size_t peakWindow = 0;
    double peakAppDemandPerSec = 0.0;
    for (std::size_t w = 0; w < cell.windows.size(); ++w) {
      if (cell.windows[w].cost.micros() > peak.micros()) {
        peak = cell.windows[w].cost;
        peakWindow = w;
      }
      if (cell.windows[w].windowSeconds > 0.0) {
        peakAppDemandPerSec =
            std::max(peakAppDemandPerSec, cell.windows[w].appCpuMicros /
                                              cell.windows[w].windowSeconds);
      }
    }
    const double delta =
        steady.micros() > 0
            ? (static_cast<double>(peak.micros()) /
                   static_cast<double>(steady.micros()) -
               1.0) * 100.0
            : 0.0;
    // Nodes needed so the observed peak demand fits under the same
    // per-node capacity the steady tier was provisioned with.
    const std::size_t neededNodes = static_cast<std::size_t>(
        std::ceil(peakAppDemandPerSec / cell.appCapacityPerNode));
    const std::size_t extraNodes =
        neededNodes > cell.appServers ? neededNodes - cell.appServers : 0;
    const double perNodeUsd = cell.steadyAppComputeCost.dollars() /
                              static_cast<double>(cell.appServers);
    char deltaCell[32];
    std::snprintf(deltaCell, sizeof deltaCell, "+%.1f%%", delta);
    char extraCost[32];
    std::snprintf(extraCost, sizeof extraCost, "$%.2f/mo",
                  static_cast<double>(extraNodes) * perNodeUsd);
    headroom.row(cell.architecture, steady.str(), peak.str(),
                 kPhases[peakWindow], deltaCell,
                 static_cast<unsigned long long>(extraNodes), extraCost);
  }
  headroom.print("\nFigure 10 headroom: provisioning the surge away instead "
                 "(extra app nodes -> extra $)");

  if (benchOptions.trace.enabled()) {
    // clearMeters resets the tracer per window, so the summary covers the
    // final (recover) window.
    for (const CellResult& cell : cells) {
      core::ExperimentResult result;
      result.architecture =
          cell.architecture + (cell.defenses ? ".defenses" : ".bare");
      result.trace = cell.trace;
      std::printf("\n%s",
                  core::traceTreeReport(result,
                                        "trace fig10." + result.architecture +
                                            " (final window)",
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!benchOptions.metricsOut.empty()) {
    obs::MetricsRegistry registry;
    for (const CellResult& cell : cells) {
      const std::string prefix = "fig10." + cell.architecture +
                                 (cell.defenses ? ".defenses." : ".bare.");
      for (std::size_t w = 0; w < cell.windows.size(); ++w) {
        const WindowRow& row = cell.windows[w];
        const std::string base = prefix + "window_" + std::to_string(w) + ".";
        registry.setGauge(base + "p50_us", row.p50Micros);
        registry.setGauge(base + "p99_us", row.p99Micros);
        registry.setGauge(base + "goodput", row.goodput);
        registry.setGauge(base + "hit_ratio", row.hitRatio);
        registry.setCounter(base + "shedded_requests", row.shed);
        registry.setCounter(base + "queue_timeouts", row.queueTimeouts);
        registry.setCounter(base + "breaker_opens", row.breakerOpens);
        registry.setCounter(base + "breaker_short_circuits",
                            row.breakerShortCircuits);
        registry.setCounter(base + "hedges_sent", row.hedgesSent);
        registry.setCounter(base + "hedge_wins", row.hedgeWins);
        registry.setCounter(base + "retries", row.retries);
        registry.setCounter(base + "failed_ops", row.failedOps);
        registry.setGauge(base + "amplification", row.amplification);
        registry.setGauge(base + "window_cost_usd", row.cost.dollars());
      }
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
