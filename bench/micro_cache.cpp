// dcache-lint: allow-file(bench-hygiene, Google-Benchmark microbench — stdout carries wall-clock timings and can never be byte-deterministic, so it is excluded from the determinism diff and golden gates)
// Micro-benchmarks for the cache library: per-operation costs of the
// eviction policies, sharding, consistent hashing, Zipf sampling and the
// Mattson profiler — the structures every simulated request crosses.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/hash_ring.hpp"
#include "cache/kv_cache.hpp"
#include "cache/mrc.hpp"
#include "cache/sharded.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace dcache;

std::vector<std::string> makeKeys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(workload::keyName(i));
  return keys;
}

void BM_PolicyGetHit(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  auto cache = cache::makeCache(policy, util::Bytes::mb(64));
  const auto keys = makeKeys(10000);
  for (const auto& key : keys) {
    cache->put(key, cache::CacheEntry::sized(100));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->get(keys[i]));
    i = (i + 7919) % keys.size();
  }
  state.SetLabel(std::string(cache::evictionPolicyName(policy)));
}
BENCHMARK(BM_PolicyGetHit)->DenseRange(0, 3);

void BM_PolicyPutWithEviction(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  // Capacity for ~1000 entries; inserts from a 10x keyspace force evictions.
  auto cache = cache::makeCache(policy, util::Bytes::of(1000 * 200));
  const auto keys = makeKeys(10000);
  std::size_t i = 0;
  for (auto _ : state) {
    cache->put(keys[i], cache::CacheEntry::sized(100));
    i = (i + 7919) % keys.size();
  }
  state.SetLabel(std::string(cache::evictionPolicyName(policy)));
}
BENCHMARK(BM_PolicyPutWithEviction)->DenseRange(0, 3);

void BM_ShardedGet(benchmark::State& state) {
  cache::ShardedCache cache(util::Bytes::mb(64),
                            static_cast<std::size_t>(state.range(0)));
  const auto keys = makeKeys(10000);
  for (const auto& key : keys) {
    cache.put(key, cache::CacheEntry::sized(100));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(keys[i]));
    i = (i + 7919) % keys.size();
  }
}
BENCHMARK(BM_ShardedGet)->Arg(1)->Arg(4)->Arg(16);

void BM_HashRingOwner(benchmark::State& state) {
  cache::HashRing ring;
  for (std::size_t m = 0; m < 16; ++m) ring.addMember(m);
  std::uint64_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ownerOf(h));
    h = h * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_HashRingOwner);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfianGenerator zipf(
      static_cast<std::uint64_t>(state.range(0)), 1.2);
  util::Pcg32 rng(1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.nextKey(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100000)->Arg(10000000);

void BM_MattsonAccess(benchmark::State& state) {
  cache::MattsonProfiler profiler;
  workload::ZipfianGenerator zipf(100000, 1.0);
  util::Pcg32 rng(2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profiler.access(workload::keyName(zipf.nextKey(rng))));
  }
}
BENCHMARK(BM_MattsonAccess);

}  // namespace
