// dcache-lint: allow-file(bench-hygiene, Google-Benchmark microbench — stdout carries wall-clock timings and can never be byte-deterministic, so it is excluded from the determinism diff and golden gates)
// Micro-benchmarks for the cache library: per-operation costs of the
// eviction policies, sharding, consistent hashing, Zipf sampling and the
// Mattson profiler — the structures every simulated request crosses.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/hash_ring.hpp"
#include "cache/kv_cache.hpp"
#include "cache/mrc.hpp"
#include "cache/sharded.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace dcache;

std::vector<std::string> makeKeys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(workload::keyName(i));
  return keys;
}

std::string backendLabel(cache::EvictionPolicy policy,
                         cache::CacheBackend backend) {
  std::string label(cache::evictionPolicyName(policy));
  label += '/';
  label += cache::cacheBackendName(backend);
  return label;
}

// Each policy benchmark runs as a node/flat pair interleaved in one process,
// so the backend comparison is immune to machine-load drift between runs.
void BM_PolicyGetHit(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  const auto backend = static_cast<cache::CacheBackend>(state.range(1));
  auto cache = cache::makeCache(policy, util::Bytes::mb(64), backend);
  const auto keys = makeKeys(10000);
  for (const auto& key : keys) {
    cache->put(key, cache::CacheEntry::sized(100));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->get(keys[i]));
    i = (i + 7919) % keys.size();
  }
  state.SetLabel(backendLabel(policy, backend));
}
BENCHMARK(BM_PolicyGetHit)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2}});  // policy x {kNode, kFlat}

void BM_PolicyPutWithEviction(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  const auto backend = static_cast<cache::CacheBackend>(state.range(1));
  // Capacity for ~1000 entries; inserts from a 10x keyspace force evictions.
  auto cache = cache::makeCache(policy, util::Bytes::of(1000 * 200), backend);
  const auto keys = makeKeys(10000);
  std::size_t i = 0;
  for (auto _ : state) {
    cache->put(keys[i], cache::CacheEntry::sized(100));
    i = (i + 7919) % keys.size();
  }
  state.SetLabel(backendLabel(policy, backend));
}
BENCHMARK(BM_PolicyPutWithEviction)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2}});

// Cold fill: construct a cache and insert 10k distinct entries per
// iteration. This is the allocation-dominated path the slab/arena storage
// targets — the node backends pay three heap allocations per insert, the
// flat backend bump-allocates from chunked slabs. Millisecond-scale
// iterations also make this the most machine-noise-immune cache benchmark
// in the suite.
void BM_PolicyColdFill(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  const auto backend = static_cast<cache::CacheBackend>(state.range(1));
  const auto keys = makeKeys(10000);
  for (auto _ : state) {
    auto cache = cache::makeCache(policy, util::Bytes::mb(64), backend);
    for (const auto& key : keys) {
      cache->put(key, cache::CacheEntry::sized(100));
    }
    benchmark::DoNotOptimize(cache->itemCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
  state.SetLabel(backendLabel(policy, backend));
}
BENCHMARK(BM_PolicyColdFill)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2}});

void BM_ShardedGet(benchmark::State& state) {
  cache::ShardedCache cache(util::Bytes::mb(64),
                            static_cast<std::size_t>(state.range(0)));
  const auto keys = makeKeys(10000);
  for (const auto& key : keys) {
    cache.put(key, cache::CacheEntry::sized(100));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(keys[i]));
    i = (i + 7919) % keys.size();
  }
}
BENCHMARK(BM_ShardedGet)->Arg(1)->Arg(4)->Arg(16);

void BM_HashRingOwner(benchmark::State& state) {
  cache::HashRing ring;
  for (std::size_t m = 0; m < 16; ++m) ring.addMember(m);
  std::uint64_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ownerOf(h));
    h = h * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_HashRingOwner);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfianGenerator zipf(
      static_cast<std::uint64_t>(state.range(0)), 1.2);
  util::Pcg32 rng(1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.nextKey(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100000)->Arg(10000000);

void BM_MattsonAccess(benchmark::State& state) {
  cache::MattsonProfiler profiler;
  workload::ZipfianGenerator zipf(100000, 1.0);
  util::Pcg32 rng(2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profiler.access(workload::keyName(zipf.nextKey(rng))));
  }
}
BENCHMARK(BM_MattsonAccess);

}  // namespace
