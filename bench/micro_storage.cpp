// dcache-lint: allow-file(bench-hygiene, Google-Benchmark microbench — stdout carries wall-clock timings and can never be byte-deterministic, so it is excluded from the determinism diff and golden gates)
// Micro-benchmarks for the storage engine: SQL parse/plan, end-to-end
// statement execution, raw KV engine operations and the row codec. The
// parse/plan numbers here are the *host* cost of our mini engine; the
// simulated TiDB front-end charges the calibrated constants documented in
// core/calibration.hpp instead.
#include <benchmark/benchmark.h>

#include <memory>

#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"
#include "storage/kv_engine.hpp"
#include "storage/sql_parser.hpp"
#include "workload/workload.hpp"

namespace {

using namespace dcache;
using storage::Column;
using storage::ColumnType;
using storage::Row;
using storage::TableSchema;
using storage::Value;

void BM_SqlParsePointSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed =
        storage::parseSql("SELECT * FROM tables WHERE id = ? AND owner = ?");
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SqlParsePointSelect);

void BM_SqlParseJoin(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = storage::parseSql(
        "SELECT name, title FROM tables JOIN schemas ON tables.schema_id = "
        "schemas.id WHERE id = ? LIMIT 10");
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SqlParseJoin);

struct DbFixture {
  DbFixture()
      : sqlTier("sql", sim::TierKind::kSqlFrontend, 1),
        kvTier("kv", sim::TierKind::kKvStorage, 3),
        client("client", sim::TierKind::kClient),
        channel(network, rpc::SerializationModel{}),
        db(sqlTier, kvTier, channel) {
    db.createTable(TableSchema("users",
                               {Column{"id", ColumnType::kInt},
                                Column{"team", ColumnType::kInt},
                                Column{"name", ColumnType::kString}},
                               0, {1}));
    for (std::int64_t i = 0; i < 10000; ++i) {
      db.loadRow("users", Row{{i, i % 100, "user_" + std::to_string(i)}});
    }
  }
  sim::NetworkModel network;
  sim::Tier sqlTier;
  sim::Tier kvTier;
  sim::Node client;
  rpc::Channel channel;
  storage::Database db;
};

void BM_ExecPointSelect(benchmark::State& state) {
  DbFixture fixture;
  std::int64_t id = 0;
  for (auto _ : state) {
    const Value params[] = {Value{id}};
    auto result =
        fixture.db.exec(fixture.client, "SELECT * FROM users WHERE id = ?",
                        params);
    benchmark::DoNotOptimize(result.rows.data());
    id = (id + 37) % 10000;
  }
}
BENCHMARK(BM_ExecPointSelect);

void BM_ExecIndexSelect(benchmark::State& state) {
  DbFixture fixture;
  std::int64_t team = 0;
  for (auto _ : state) {
    const Value params[] = {Value{team}};
    auto result = fixture.db.exec(
        fixture.client, "SELECT * FROM users WHERE team = ?", params);
    benchmark::DoNotOptimize(result.rows.data());
    team = (team + 1) % 100;
  }
}
BENCHMARK(BM_ExecIndexSelect);

void BM_ExecUpdate(benchmark::State& state) {
  DbFixture fixture;
  std::int64_t id = 0;
  for (auto _ : state) {
    const Value params[] = {Value{std::string("renamed")}, Value{id}};
    auto result = fixture.db.exec(
        fixture.client, "UPDATE users SET name = ? WHERE id = ?", params);
    benchmark::DoNotOptimize(result.rowsAffected);
    id = (id + 101) % 10000;
  }
}
BENCHMARK(BM_ExecUpdate);

void BM_KvReadValue(benchmark::State& state) {
  DbFixture fixture;
  for (int i = 0; i < 10000; ++i) {
    fixture.db.loadValue(workload::keyName(static_cast<std::uint64_t>(i)),
                         4096);
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    auto result = fixture.db.readValue(fixture.client, workload::keyName(k));
    benchmark::DoNotOptimize(result.found);
    k = (k + 37) % 10000;
  }
}
BENCHMARK(BM_KvReadValue);

void BM_KvEngineRawGet(benchmark::State& state) {
  storage::KvEngine engine;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    engine.put(workload::keyName(i), storage::StoredValue::sized(100), i + 1);
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.get(workload::keyName(k)));
    k = (k + 7919) % 100000;
  }
}
BENCHMARK(BM_KvEngineRawGet);

void BM_RowCodecRoundtrip(benchmark::State& state) {
  const TableSchema schema("t",
                           {Column{"id", ColumnType::kInt},
                            Column{"x", ColumnType::kDouble},
                            Column{"s", ColumnType::kString}},
                           0);
  const Row row{{std::int64_t{42}, 3.25, std::string(128, 's')}};
  for (auto _ : state) {
    const std::string bytes = storage::encodeRow(schema, row);
    auto back = storage::decodeRow(schema, bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RowCodecRoundtrip);

}  // namespace
