// Figure 9 — failure timeline: what each architecture's bill and behaviour
// look like when the cache actually fails. All four architectures serve the
// synthetic workload through a steady -> crash -> recovery timeline driven
// by a deterministic FaultSchedule:
//
//   window 0-1  steady state
//   window 2    a cache-bearing node crashes (app node for Linked/-Version,
//               remote pod for Remote, a KV node's block cache for Base),
//               coincident with a degraded-network window (2x latency, 1%
//               per-leg message drops) — failures cluster in practice
//   window 3-4  node stays down; survivors absorb the traffic
//   window 5    cold restart: ownership returns, caches re-warm
//   window 6-7  recovery
//
// Per window the bench reports hit ratio, storage-read amplification vs
// steady state, p99 latency, the retry/timeout anatomy and the CPU burned
// on legs that never paid off — then summarizes the provisioned-cost
// headroom each architecture needs to ride out its worst window. The paper
// prices steady state; this is the availability cost riding on top: Linked
// loses ~1/N of its hit ratio to a single crash and re-pays warmup twice,
// Remote degrades to storage for 1/N of keys, Base only re-warms a block
// cache. Every cell is seeded from (--seed, cell index) alone, so output
// is byte-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/matrix.hpp"
#include "sim/fault.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

constexpr core::Architecture kArchs[] = {
    core::Architecture::kBase, core::Architecture::kRemote,
    core::Architecture::kLinked, core::Architecture::kLinkedVersion};

constexpr std::uint64_t kWarmupOps = 120000;
constexpr std::uint64_t kWindowOps = 30000;
constexpr std::size_t kWindows = 8;
constexpr std::size_t kCrashWindow = 2;
constexpr std::size_t kRestartWindow = 5;
constexpr double kDegradeLatencyFactor = 2.0;
constexpr double kDegradeDropProbability = 0.01;

constexpr const char* kPhases[kWindows] = {
    "steady",  "steady", "crash+degrade", "down",
    "down",    "restart(cold)", "rewarm", "rewarm"};

/// Tier whose node 0 the schedule crashes: wherever this architecture
/// keeps its cache.
[[nodiscard]] sim::TierKind crashTier(core::Architecture arch) {
  switch (arch) {
    case core::Architecture::kRemote:
      return sim::TierKind::kRemoteCache;
    case core::Architecture::kDisaggregated:
      return sim::TierKind::kFarMemory;
    case core::Architecture::kLinked:
    case core::Architecture::kLinkedVersion:
      return sim::TierKind::kAppServer;
    case core::Architecture::kBase:
      break;
  }
  return sim::TierKind::kKvStorage;  // Base: the block cache is the cache
}

struct WindowRow {
  double hitRatio = 0.0;
  std::uint64_t storageReads = 0;
  double amplification = 1.0;  // storage reads vs steady window 0
  double p99Micros = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failedCalls = 0;
  std::uint64_t degradedReads = 0;
  std::uint64_t coalescedMisses = 0;
  double wastedCpuMicros = 0.0;
  util::Money cost;  // this window's bill at the monthly rate
};

struct CellResult {
  std::string architecture;
  std::vector<WindowRow> windows;
  obs::TraceSummary trace;  // final window only (clearMeters resets it)
};

CellResult runTimelineCell(std::size_t index, std::uint64_t rootSeed) {
  const core::Architecture arch = kArchs[index];
  core::DeploymentConfig deploymentConfig;
  deploymentConfig.architecture = arch;
  deploymentConfig.faultSeed = core::cellSeed(rootSeed, index);
  deploymentConfig = bench::withBenchTrace(deploymentConfig);
  core::Deployment deployment(deploymentConfig);

  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  auto windowStartMicros = [&](std::size_t window) {
    return static_cast<std::uint64_t>(
        microsPerOp *
        static_cast<double>(kWarmupOps + window * kWindowOps));
  };

  for (std::uint64_t i = 0; i < kWarmupOps; ++i) serveOne();

  sim::FaultSchedule faults;
  const sim::TierKind tier = crashTier(arch);
  faults.crashNode(windowStartMicros(kCrashWindow), tier, 0);
  faults.restartNode(windowStartMicros(kRestartWindow), tier, 0);
  faults.degradeNetwork(windowStartMicros(kCrashWindow),
                        windowStartMicros(kCrashWindow + 1),
                        kDegradeLatencyFactor, kDegradeDropProbability);
  deployment.installFaultSchedule(std::move(faults));

  const core::ExperimentConfig experiment;  // pricing + utilization defaults
  const core::CostModel model(experiment.pricing,
                              experiment.targetUtilization);
  const double windowSeconds =
      static_cast<double>(kWindowOps) / bench::kSyntheticQps;

  CellResult cell;
  cell.architecture = std::string(core::architectureName(arch));
  for (std::size_t w = 0; w < kWindows; ++w) {
    deployment.clearMeters();
    for (std::uint64_t i = 0; i < kWindowOps; ++i) serveOne();
    const core::ServeCounters& c = deployment.counters();
    WindowRow row;
    row.hitRatio = c.hitRatio();
    row.storageReads = c.storageReads;
    row.p99Micros = deployment.latencies().p99();
    row.retries = c.retries;
    row.timeouts = c.timeouts;
    row.failedCalls = c.failedCalls;
    row.degradedReads = c.degradedReads;
    row.coalescedMisses = c.coalescedMisses;
    row.wastedCpuMicros = c.wastedCpuMicros;
    row.cost = model
                   .breakdown(deployment.tiers(), windowSeconds,
                              deployment.db().totalStoredBytes(),
                              deploymentConfig.replicationFactor)
                   .totalCost;
    cell.windows.push_back(row);
  }
  if (const obs::Tracer* tracer = deployment.tracer()) {
    cell.trace = tracer->summary();
  }
  const double steadyReads =
      static_cast<double>(cell.windows.front().storageReads);
  for (WindowRow& row : cell.windows) {
    row.amplification = steadyReads > 0.0
                            ? static_cast<double>(row.storageReads) /
                                  steadyReads
                            : 1.0;
  }
  return cell;
}

void printTimeline(const CellResult& cell) {
  util::TablePrinter table({"window", "phase", "hit_ratio", "storage_reads",
                            "amp", "p99_us", "retries", "timeouts", "failed",
                            "degraded", "coalesced", "wasted_cpu_us",
                            "window_cost"});
  for (std::size_t w = 0; w < cell.windows.size(); ++w) {
    const WindowRow& row = cell.windows[w];
    table.row(static_cast<unsigned long long>(w), kPhases[w], row.hitRatio,
              static_cast<unsigned long long>(row.storageReads),
              row.amplification, row.p99Micros,
              static_cast<unsigned long long>(row.retries),
              static_cast<unsigned long long>(row.timeouts),
              static_cast<unsigned long long>(row.failedCalls),
              static_cast<unsigned long long>(row.degradedReads),
              static_cast<unsigned long long>(row.coalescedMisses),
              row.wastedCpuMicros, row.cost.str());
  }
  table.print("\nFigure 9 [" + cell.architecture +
              "]: failure timeline (30K-op windows at 120K QPS)");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  const core::MatrixOptions& options = benchOptions.matrix;
  util::ThreadPool pool(options.jobs);
  const std::vector<CellResult> cells = util::mapOrdered(
      pool, std::size(kArchs),
      [&options](std::size_t i) {
        return runTimelineCell(i, options.rootSeed);
      });
  pool.wait();

  for (const CellResult& cell : cells) printTimeline(cell);

  // Provisioned-cost headroom: if the platform provisions for the worst
  // window instead of steady state (auto-scalers trigger on CPU), this is
  // the premium each architecture pays for its failure mode.
  util::TablePrinter summary({"architecture", "steady_cost", "peak_cost",
                              "peak_phase", "headroom_delta"});
  for (const CellResult& cell : cells) {
    const util::Money steady = cell.windows.front().cost;
    util::Money peak = steady;
    std::size_t peakWindow = 0;
    for (std::size_t w = 0; w < cell.windows.size(); ++w) {
      if (cell.windows[w].cost.micros() > peak.micros()) {
        peak = cell.windows[w].cost;
        peakWindow = w;
      }
    }
    const double delta =
        steady.micros() > 0
            ? (static_cast<double>(peak.micros()) /
                   static_cast<double>(steady.micros()) -
               1.0) * 100.0
            : 0.0;
    char deltaCell[32];
    std::snprintf(deltaCell, sizeof deltaCell, "+%.1f%%", delta);
    summary.row(cell.architecture, steady.str(), peak.str(),
                kPhases[peakWindow], deltaCell);
  }
  summary.print("\nFigure 9 summary: provisioning for the worst window "
                "(peak vs steady headroom)");
  if (benchOptions.trace.enabled()) {
    // clearMeters resets the tracer per window, so the summary covers the
    // final (rewarm) window — the interesting recovery-path spans.
    for (const CellResult& cell : cells) {
      core::ExperimentResult result;
      result.architecture = cell.architecture;
      result.trace = cell.trace;
      std::printf("\n%s",
                  core::traceTreeReport(result,
                                        "trace fig9." + cell.architecture +
                                            " (final window)",
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!benchOptions.metricsOut.empty()) {
    // Windowed bench: export the per-window timeline instead of the usual
    // per-cell experiment snapshot.
    obs::MetricsRegistry registry;
    for (const CellResult& cell : cells) {
      for (std::size_t w = 0; w < cell.windows.size(); ++w) {
        const WindowRow& row = cell.windows[w];
        const std::string base = "fig9." + cell.architecture + ".window_" +
                                 std::to_string(w) + ".";
        registry.setGauge(base + "hit_ratio", row.hitRatio);
        registry.setCounter(base + "storage_reads", row.storageReads);
        registry.setGauge(base + "amplification", row.amplification);
        registry.setGauge(base + "p99_us", row.p99Micros);
        registry.setCounter(base + "retries", row.retries);
        registry.setCounter(base + "timeouts", row.timeouts);
        registry.setCounter(base + "degraded_reads", row.degradedReads);
        registry.setGauge(base + "wasted_cpu_micros", row.wastedCpuMicros);
        registry.setGauge(base + "window_cost_usd", row.cost.dollars());
      }
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
