// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/matrix.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"

namespace dcache::bench {

/// Common bench flags: the matrix options (--jobs/--seed) plus the
/// observability flags every figure bench shares. All default to off, so a
/// bench invoked with no flags produces byte-identical output to a build
/// without the obs subsystem.
struct BenchOptions {
  core::MatrixOptions matrix;
  /// --trace-sample N (0 = off, 1 = every request, N = seeded 1-in-N) and
  /// --trace-keep K (span trees retained per cell).
  obs::TraceConfig trace;
  /// --metrics-out FILE: write the unified metrics registry as JSON.
  std::string metricsOut;
};

/// Per-binary options singleton, set by parseBenchOptions.
[[nodiscard]] inline BenchOptions& benchOptions() {
  static BenchOptions options;
  return options;
}

/// Parse shared bench flags out of argv (both "--flag value" and
/// "--flag=value" forms); unrecognized arguments are ignored, matching
/// parseMatrixOptions. Also stores the result in benchOptions().
[[nodiscard]] inline BenchOptions parseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.matrix = core::parseMatrixOptions(argc, argv);
  options.trace.seed = options.matrix.rootSeed;
  const auto value = [&](int& i, std::string_view arg,
                         std::string_view flag) -> const char* {
    if (arg == flag) {
      if (i + 1 < argc) return argv[++i];
      return nullptr;
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = value(i, arg, "--trace-sample")) {
      options.trace.sampleEvery =
          static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value(i, arg, "--trace-keep")) {
      options.trace.keepTraces =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value(i, arg, "--metrics-out")) {
      options.metricsOut = v;
    }
  }
  benchOptions() = options;
  return options;
}

/// Apply the bench-wide trace config to a cell's deployment (a deployment
/// that already configured its own tracing wins).
[[nodiscard]] inline core::DeploymentConfig withBenchTrace(
    core::DeploymentConfig deployment) {
  if (benchOptions().trace.enabled() && !deployment.trace.enabled()) {
    deployment.trace = benchOptions().trace;
  }
  return deployment;
}

/// Stable per-cell metric/report prefix: cell index + architecture +
/// workload (the index disambiguates sweeps that reuse both).
[[nodiscard]] inline std::string cellLabel(
    std::size_t index, const core::ExperimentResult& result) {
  return "cell" + std::to_string(index) + "." + result.architecture + "." +
         result.workload;
}

/// Shared bench epilogue: when --trace-sample is on, print each traced
/// cell's trace-tree report; when --metrics-out is given, publish every
/// cell into one registry and write it as JSON. A bench run with neither
/// flag emits nothing here, keeping default stdout byte-identical.
inline void finishBench(std::span<const core::ExperimentResult> results) {
  const BenchOptions& options = benchOptions();
  if (options.trace.enabled()) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].trace.enabled()) continue;
      std::printf("\n%s",
                  core::traceTreeReport(results[i],
                                        "trace " + cellLabel(i, results[i]),
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!options.metricsOut.empty()) {
    obs::MetricsRegistry registry;
    for (std::size_t i = 0; i < results.size(); ++i) {
      core::exportExperimentMetrics(registry, cellLabel(i, results[i]) + ".",
                                    results[i]);
    }
    if (!registry.writeJsonFile(options.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   options.metricsOut.c_str());
    }
  }
}

/// Offered load for the compute-bound synthetic sweeps. The paper's testbed
/// runs its deployments compute-bound (provisioning follows peak CPU); at
/// trivially low QPS fixed memory would dominate every bill and mask the
/// architecture differences the figures are about.
inline constexpr double kSyntheticQps = 120000.0;
/// Unity Catalog serves ~40K complex queries per second (§5.2).
inline constexpr double kUcQps = 40000.0;

[[nodiscard]] inline std::string savingCell(const core::ExperimentResult& base,
                                            const core::ExperimentResult& r) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2fx", core::savingsVs(base, r));
  return buf;
}

/// Queue one (architecture, workload) cell on `matrix`; the cell builds a
/// fresh deployment and copies the workload template so nothing is shared
/// across workers. Returns the cell's result index.
template <typename WorkloadT>
std::size_t addCell(core::ExperimentMatrix& matrix, core::Architecture arch,
                    const WorkloadT& workloadTemplate,
                    core::DeploymentConfig deployment,
                    core::ExperimentConfig experiment) {
  deployment = withBenchTrace(deployment);
  return matrix.add(
      [arch, workloadTemplate, deployment, experiment](util::Pcg32&) {
        WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
        return core::runArchitecture(arch, workload, deployment, experiment);
      });
}

/// Run one (architecture, workload) cell inline with a fresh deployment.
template <typename WorkloadT>
core::ExperimentResult runCell(core::Architecture arch,
                               const WorkloadT& workloadTemplate,
                               core::DeploymentConfig deployment,
                               core::ExperimentConfig experiment) {
  WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
  return core::runArchitecture(arch, workload, withBenchTrace(deployment),
                               experiment);
}

}  // namespace dcache::bench
