// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/matrix.hpp"
#include "core/report.hpp"

namespace dcache::bench {

/// Offered load for the compute-bound synthetic sweeps. The paper's testbed
/// runs its deployments compute-bound (provisioning follows peak CPU); at
/// trivially low QPS fixed memory would dominate every bill and mask the
/// architecture differences the figures are about.
inline constexpr double kSyntheticQps = 120000.0;
/// Unity Catalog serves ~40K complex queries per second (§5.2).
inline constexpr double kUcQps = 40000.0;

[[nodiscard]] inline std::string savingCell(const core::ExperimentResult& base,
                                            const core::ExperimentResult& r) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2fx", core::savingsVs(base, r));
  return buf;
}

/// Queue one (architecture, workload) cell on `matrix`; the cell builds a
/// fresh deployment and copies the workload template so nothing is shared
/// across workers. Returns the cell's result index.
template <typename WorkloadT>
std::size_t addCell(core::ExperimentMatrix& matrix, core::Architecture arch,
                    const WorkloadT& workloadTemplate,
                    core::DeploymentConfig deployment,
                    core::ExperimentConfig experiment) {
  return matrix.add(
      [arch, workloadTemplate, deployment, experiment](util::Pcg32&) {
        WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
        return core::runArchitecture(arch, workload, deployment, experiment);
      });
}

/// Run one (architecture, workload) cell inline with a fresh deployment.
template <typename WorkloadT>
core::ExperimentResult runCell(core::Architecture arch,
                               const WorkloadT& workloadTemplate,
                               core::DeploymentConfig deployment,
                               core::ExperimentConfig experiment) {
  WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
  return core::runArchitecture(arch, workload, deployment, experiment);
}

}  // namespace dcache::bench
