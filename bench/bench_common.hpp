// Shared helpers for the figure-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <sys/resource.h>

#include "core/experiment.hpp"
#include "core/matrix.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"

namespace dcache::bench {

/// Common bench flags: the matrix options (--jobs/--seed) plus the
/// observability flags every figure bench shares. All default to off, so a
/// bench invoked with no flags produces byte-identical output to a build
/// without the obs subsystem.
struct BenchOptions {
  core::MatrixOptions matrix;
  /// --trace-sample N (0 = off, 1 = every request, N = seeded 1-in-N) and
  /// --trace-keep K (span trees retained per cell).
  obs::TraceConfig trace;
  /// --metrics-out FILE: write the unified metrics registry as JSON.
  std::string metricsOut;
  /// --bench-json FILE: write a perf-trajectory record (schema
  /// dcache.bench.v1) with wall-clock, ops/sec and peak RSS. Timing data
  /// goes to this sidecar only — stdout stays byte-deterministic.
  std::string benchJsonOut;
  /// --disagg 0|1 (or DCACHE_DISAGG=0|1; the flag wins): include the fifth,
  /// memory-disaggregated architecture in the arch-sweeping benches. On by
  /// default; --disagg 0 restores the pre-disaggregation four-architecture
  /// stdout byte-for-byte.
  bool disagg = true;
  /// argv[0] basename, for the perf record's bench name.
  std::string benchName;
  /// Process wall-clock start, captured in parseBenchOptions.
  // dcache-lint: allow(determinism, wall-clock member feeds only the --bench-json perf sidecar, never stdout)
  std::chrono::steady_clock::time_point startTime;
};

/// Per-binary options singleton, set by parseBenchOptions.
[[nodiscard]] inline BenchOptions& benchOptions() {
  static BenchOptions options;
  return options;
}

/// Parse shared bench flags out of argv (both "--flag value" and
/// "--flag=value" forms); unrecognized arguments are ignored, matching
/// parseMatrixOptions. Also stores the result in benchOptions().
[[nodiscard]] inline BenchOptions parseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.matrix = core::parseMatrixOptions(argc, argv);
  options.trace.seed = options.matrix.rootSeed;
  const auto value = [&](int& i, std::string_view arg,
                         std::string_view flag) -> const char* {
    if (arg == flag) {
      if (i + 1 < argc) return argv[++i];
      return nullptr;
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    return nullptr;
  };
  if (const char* env = std::getenv("DCACHE_DISAGG")) {
    options.disagg = env[0] != '0';
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = value(i, arg, "--disagg")) {
      options.disagg = std::strtoull(v, nullptr, 10) != 0;
    } else if (const char* v = value(i, arg, "--trace-sample")) {
      options.trace.sampleEvery =
          static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value(i, arg, "--trace-keep")) {
      options.trace.keepTraces =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value(i, arg, "--metrics-out")) {
      options.metricsOut = v;
    } else if (const char* v = value(i, arg, "--bench-json")) {
      options.benchJsonOut = v;
    }
  }
  if (argc > 0) {
    std::string_view name = argv[0];
    if (const auto slash = name.rfind('/'); slash != std::string_view::npos) {
      name.remove_prefix(slash + 1);
    }
    options.benchName = name;
  }
  // Wall-clock feeds only the --bench-json perf sidecar, never stdout, so
  // the --jobs determinism contract is untouched.
  // dcache-lint: allow(determinism, bench wall-clock goes to the --bench-json perf sidecar only)
  options.startTime = std::chrono::steady_clock::now();
  benchOptions() = options;
  return options;
}

/// Apply the bench-wide trace config to a cell's deployment (a deployment
/// that already configured its own tracing wins).
[[nodiscard]] inline core::DeploymentConfig withBenchTrace(
    core::DeploymentConfig deployment) {
  if (benchOptions().trace.enabled() && !deployment.trace.enabled()) {
    deployment.trace = benchOptions().trace;
  }
  return deployment;
}

/// Stable per-cell metric/report prefix: cell index + architecture +
/// workload (the index disambiguates sweeps that reuse both).
[[nodiscard]] inline std::string cellLabel(
    std::size_t index, const core::ExperimentResult& result) {
  return "cell" + std::to_string(index) + "." + result.architecture + "." +
         result.workload;
}

/// Perf-trajectory record (schema dcache.bench.v1): wall-clock, simulated
/// op throughput and peak RSS for one bench invocation. tools/perf.sh
/// records these per bench into perf/BENCH_<name>.json and fails the perf
/// lane on >20% wall-clock regressions; stdout (golden-diffed) is never
/// touched.
inline void writeBenchJson(const BenchOptions& options,
                           std::span<const core::ExperimentResult> results) {
  // dcache-lint: allow(determinism, bench wall-clock goes to the --bench-json perf sidecar only)
  const auto end = std::chrono::steady_clock::now();
  const double wallMs =
      std::chrono::duration<double, std::milli>(end - options.startTime)
          .count();
  std::uint64_t ops = 0;
  for (const core::ExperimentResult& r : results) {
    ops += r.counters.reads + r.counters.writes;
  }
  const double opsPerSec = wallMs > 0.0 ? ops * 1000.0 / wallMs : 0.0;
  long peakRssKb = 0;
  if (rusage usage{}; getrusage(RUSAGE_SELF, &usage) == 0) {
    peakRssKb = usage.ru_maxrss;  // KiB on Linux
  }
  std::FILE* f = std::fopen(options.benchJsonOut.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write bench json to %s\n",
                 options.benchJsonOut.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dcache.bench.v1\",\n"
               "  \"bench\": \"%s\",\n"
               "  \"wall_ms\": %.1f,\n"
               "  \"ops\": %llu,\n"
               "  \"ops_per_sec\": %.1f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"cells\": %zu\n"
               "}\n",
               options.benchName.c_str(), wallMs,
               static_cast<unsigned long long>(ops), opsPerSec, peakRssKb,
               results.size());
  std::fclose(f);
}

/// Shared bench epilogue: when --trace-sample is on, print each traced
/// cell's trace-tree report; when --metrics-out is given, publish every
/// cell into one registry and write it as JSON. A bench run with neither
/// flag emits nothing here, keeping default stdout byte-identical.
inline void finishBench(std::span<const core::ExperimentResult> results) {
  const BenchOptions& options = benchOptions();
  if (options.trace.enabled()) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].trace.enabled()) continue;
      std::printf("\n%s",
                  core::traceTreeReport(results[i],
                                        "trace " + cellLabel(i, results[i]),
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!options.metricsOut.empty()) {
    obs::MetricsRegistry registry;
    for (std::size_t i = 0; i < results.size(); ++i) {
      core::exportExperimentMetrics(registry, cellLabel(i, results[i]) + ".",
                                    results[i]);
    }
    if (!registry.writeJsonFile(options.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   options.metricsOut.c_str());
    }
  }
  if (!options.benchJsonOut.empty()) {
    writeBenchJson(options, results);
  }
}

/// Architecture list for an arch-sweeping bench: `base` (a bench's own
/// roster, or core::kAllArchitectures) with kDisaggregated appended/kept
/// only while the --disagg gate is open. With the gate closed every sweep
/// collapses to its pre-disaggregation roster, so stdout stays byte-exact.
[[nodiscard]] inline std::vector<core::Architecture> sweepArchitectures(
    std::span<const core::Architecture> base = core::kAllArchitectures) {
  std::vector<core::Architecture> archs;
  for (const core::Architecture arch : base) {
    if (arch == core::Architecture::kDisaggregated && !benchOptions().disagg) {
      continue;
    }
    archs.push_back(arch);
  }
  return archs;
}

/// Offered load for the compute-bound synthetic sweeps. The paper's testbed
/// runs its deployments compute-bound (provisioning follows peak CPU); at
/// trivially low QPS fixed memory would dominate every bill and mask the
/// architecture differences the figures are about.
inline constexpr double kSyntheticQps = 120000.0;
/// Unity Catalog serves ~40K complex queries per second (§5.2).
inline constexpr double kUcQps = 40000.0;

[[nodiscard]] inline std::string savingCell(const core::ExperimentResult& base,
                                            const core::ExperimentResult& r) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2fx", core::savingsVs(base, r));
  return buf;
}

/// Queue one (architecture, workload) cell on `matrix`; the cell builds a
/// fresh deployment and copies the workload template so nothing is shared
/// across workers. Returns the cell's result index.
template <typename WorkloadT>
std::size_t addCell(core::ExperimentMatrix& matrix, core::Architecture arch,
                    const WorkloadT& workloadTemplate,
                    core::DeploymentConfig deployment,
                    core::ExperimentConfig experiment) {
  deployment = withBenchTrace(deployment);
  return matrix.add(
      [arch, workloadTemplate, deployment, experiment](util::Pcg32&) {
        WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
        return core::runArchitecture(arch, workload, deployment, experiment);
      });
}

/// Run one (architecture, workload) cell inline with a fresh deployment.
template <typename WorkloadT>
core::ExperimentResult runCell(core::Architecture arch,
                               const WorkloadT& workloadTemplate,
                               core::DeploymentConfig deployment,
                               core::ExperimentConfig experiment) {
  WorkloadT workload = workloadTemplate;  // fresh RNG state per cell
  return core::runArchitecture(arch, workload, withBenchTrace(deployment),
                               experiment);
}

}  // namespace dcache::bench
