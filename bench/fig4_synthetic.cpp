// Figure 4 — total cost across architectures on the synthetic workload
// (§5.2-5.3): 100K keys, Zipf(1.2).
//   (a) varying read ratio 50% .. 99% at 4KB values
//   (b) varying value size 1KB .. 1MB at r = 0.93
// Expected shape (paper): Linked < Remote < Base everywhere; the Linked
// advantage grows with value size (3.9x at 1KB to 7.3x at 1MB, driven by
// (de)serialization) and with read ratio.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table_printer.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

core::ExperimentConfig experimentConfig() {
  core::ExperimentConfig experiment;
  experiment.operations = 200000;
  experiment.warmupOperations = 200000;
  experiment.qps = bench::kSyntheticQps;
  return experiment;
}

void figure4a() {
  util::TablePrinter table(
      {"read_ratio", "Base", "Remote", "Linked", "Remote_saving",
       "Linked_saving"});
  for (const double readRatio : {0.50, 0.75, 0.90, 0.93, 0.99}) {
    workload::SyntheticConfig workload;
    workload.readRatio = readRatio;
    workload.valueSize = 4096;
    const workload::SyntheticWorkload reference(workload);

    const auto base = bench::runCell(core::Architecture::kBase, reference,
                                     core::DeploymentConfig{},
                                     experimentConfig());
    const auto remote = bench::runCell(core::Architecture::kRemote, reference,
                                       core::DeploymentConfig{},
                                       experimentConfig());
    const auto linked = bench::runCell(core::Architecture::kLinked, reference,
                                       core::DeploymentConfig{},
                                       experimentConfig());
    table.addRow({util::TablePrinter::toCell(readRatio),
                  base.cost.totalCost.str(), remote.cost.totalCost.str(),
                  linked.cost.totalCost.str(),
                  bench::savingCell(base, remote),
                  bench::savingCell(base, linked)});
  }
  table.print("Figure 4a: total monthly cost vs read ratio (4KB values, "
              "Zipf 1.2, 120K QPS)");
}

void figure4b() {
  util::TablePrinter table(
      {"value_size", "Base", "Remote", "Linked", "Remote_saving",
       "Linked_saving"});
  for (const std::uint64_t valueSize :
       {1024ull, 4096ull, 16384ull, 65536ull, 262144ull, 1048576ull}) {
    workload::SyntheticConfig workload;
    workload.readRatio = 0.99;
    workload.valueSize = valueSize;
    const workload::SyntheticWorkload reference(workload);

    const auto base = bench::runCell(core::Architecture::kBase, reference,
                                     core::DeploymentConfig{},
                                     experimentConfig());
    const auto remote = bench::runCell(core::Architecture::kRemote, reference,
                                       core::DeploymentConfig{},
                                       experimentConfig());
    const auto linked = bench::runCell(core::Architecture::kLinked, reference,
                                       core::DeploymentConfig{},
                                       experimentConfig());
    table.addRow({util::Bytes::of(valueSize).str(),
                  base.cost.totalCost.str(), remote.cost.totalCost.str(),
                  linked.cost.totalCost.str(),
                  bench::savingCell(base, remote),
                  bench::savingCell(base, linked)});
  }
  table.print("\nFigure 4b: total monthly cost vs value size (r=0.99, "
              "Zipf 1.2, 120K QPS; paper: Linked saves 3.9x@1KB, "
              "7.3x@1MB)");
}

}  // namespace

int main() {
  figure4a();
  figure4b();
  return 0;
}
