// Figure 4 — total cost across architectures on the synthetic workload
// (§5.2-5.3): 100K keys, Zipf(1.2).
//   (a) varying read ratio 50% .. 99% at 4KB values
//   (b) varying value size 1KB .. 1MB at r = 0.93
// Expected shape (paper): Linked < Remote < Base everywhere; the Linked
// advantage grows with value size (3.9x at 1KB to 7.3x at 1MB, driven by
// (de)serialization) and with value size and read ratio.
// Every (architecture, sweep-point) cell is queued on the experiment
// matrix and runs on its own worker (--jobs N / DCACHE_JOBS).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table_printer.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

// Sweep roster: the kDisaggregated tail rides behind the --disagg gate
// (bench::sweepArchitectures strips it, restoring the original columns).
constexpr core::Architecture kArchs[] = {core::Architecture::kBase,
                                         core::Architecture::kRemote,
                                         core::Architecture::kLinked,
                                         core::Architecture::kDisaggregated};
constexpr double kReadRatios[] = {0.50, 0.75, 0.90, 0.93, 0.99};
constexpr std::uint64_t kValueSizes[] = {1024,  4096,   16384,
                                         65536, 262144, 1048576};

core::ExperimentConfig experimentConfig() {
  core::ExperimentConfig experiment;
  experiment.operations = 200000;
  experiment.warmupOperations = 200000;
  experiment.qps = bench::kSyntheticQps;
  return experiment;
}

void addPanelCells(core::ExperimentMatrix& matrix,
                   const std::vector<core::Architecture>& archs) {
  for (const double readRatio : kReadRatios) {
    workload::SyntheticConfig workload;
    workload.readRatio = readRatio;
    workload.valueSize = 4096;
    const workload::SyntheticWorkload reference(workload);
    for (const core::Architecture arch : archs) {
      bench::addCell(matrix, arch, reference, core::DeploymentConfig{},
                     experimentConfig());
    }
  }
  for (const std::uint64_t valueSize : kValueSizes) {
    workload::SyntheticConfig workload;
    workload.readRatio = 0.99;
    workload.valueSize = valueSize;
    const workload::SyntheticWorkload reference(workload);
    for (const core::Architecture arch : archs) {
      bench::addCell(matrix, arch, reference, core::DeploymentConfig{},
                     experimentConfig());
    }
  }
}

/// Headers: one cost column per architecture, then a saving-vs-Base column
/// per non-Base architecture.
std::vector<std::string> headerRow(const std::vector<core::Architecture>& archs,
                                   const char* sweepColumn) {
  std::vector<std::string> headers{sweepColumn};
  for (const core::Architecture arch : archs) {
    headers.emplace_back(core::architectureName(arch));
  }
  for (std::size_t a = 1; a < archs.size(); ++a) {
    headers.push_back(std::string(core::architectureName(archs[a])) +
                      "_saving");
  }
  return headers;
}

void addArchRow(util::TablePrinter& table,
                const std::vector<core::ExperimentResult>& results,
                std::size_t cell, std::size_t archCount,
                std::string sweepCell) {
  std::vector<std::string> row{std::move(sweepCell)};
  const auto& base = results[cell];
  for (std::size_t a = 0; a < archCount; ++a) {
    row.push_back(results[cell + a].cost.totalCost.str());
  }
  for (std::size_t a = 1; a < archCount; ++a) {
    row.push_back(bench::savingCell(base, results[cell + a]));
  }
  table.addRow(std::move(row));
}

void figure4a(const std::vector<core::ExperimentResult>& results,
              std::size_t offset,
              const std::vector<core::Architecture>& archs) {
  util::TablePrinter table(headerRow(archs, "read_ratio"));
  std::size_t cell = offset;
  for (const double readRatio : kReadRatios) {
    addArchRow(table, results, cell, archs.size(),
               util::TablePrinter::toCell(readRatio));
    cell += archs.size();
  }
  table.print("Figure 4a: total monthly cost vs read ratio (4KB values, "
              "Zipf 1.2, 120K QPS)");
}

void figure4b(const std::vector<core::ExperimentResult>& results,
              std::size_t offset,
              const std::vector<core::Architecture>& archs) {
  util::TablePrinter table(headerRow(archs, "value_size"));
  std::size_t cell = offset;
  for (const std::uint64_t valueSize : kValueSizes) {
    addArchRow(table, results, cell, archs.size(),
               util::Bytes::of(valueSize).str());
    cell += archs.size();
  }
  table.print("\nFigure 4b: total monthly cost vs value size (r=0.99, "
              "Zipf 1.2, 120K QPS; paper: Linked saves 3.9x@1KB, "
              "7.3x@1MB)");
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);
  const std::vector<core::Architecture> archs =
      bench::sweepArchitectures(kArchs);
  addPanelCells(matrix, archs);
  const std::vector<core::ExperimentResult> results = matrix.run();
  figure4a(results, 0, archs);
  figure4b(results, std::size(kReadRatios) * archs.size(), archs);
  bench::finishBench(results);
  return 0;
}
