// Ablation — hypothesis 2 (§3): "more distributed in-memory caches, less
// storage layer caches". Holds the deployment's total cache DRAM fixed and
// sweeps how it is split between the storage-layer block caches and the
// application-linked caches. The paper (and the §4 model) predict cost
// falls monotonically as memory moves toward the app: a linked-cache hit
// eliminates the whole storage round trip, a block-cache hit only the disk
// read. A second table ablates the linked cache's eviction policy.
// Every sweep point is an experiment-matrix cell; block-cache stats are
// captured into per-cell slots alongside the priced result.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table_printer.hpp"
#include "workload/meta_trace.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

constexpr double kAppGbPerNode[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
constexpr cache::EvictionPolicy kPolicies[] = {
    cache::EvictionPolicy::kLru,  cache::EvictionPolicy::kFifo,
    cache::EvictionPolicy::kClock, cache::EvictionPolicy::kSlru,
    cache::EvictionPolicy::kLfu,  cache::EvictionPolicy::kS3Fifo};

// 24 GB of cache DRAM total across 3 app servers + 3 storage nodes.
// 100K keys x 256KB = 25.6GB of data, so the split decides who misses.
constexpr double kTotalGb = 24.0;

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
};

void addSplitCells(core::ExperimentMatrix& matrix,
                   std::vector<BlockCacheStats>& blockStats) {
  for (std::size_t i = 0; i < std::size(kAppGbPerNode); ++i) {
    const double appGbPerNode = kAppGbPerNode[i];
    matrix.add([appGbPerNode, i, &blockStats](util::Pcg32&) {
      const double storageGbPerNode = (kTotalGb - 3.0 * appGbPerNode) / 3.0;
      core::DeploymentConfig deployment;
      deployment.architecture = core::Architecture::kLinked;
      deployment.appCachePerNode = util::Bytes::gb(appGbPerNode);
      deployment.blockCachePerNode = util::Bytes::gb(storageGbPerNode);

      core::ExperimentConfig experiment;
      experiment.operations = 150000;
      experiment.warmupOperations = 250000;
      experiment.qps = bench::kSyntheticQps;

      workload::SyntheticConfig workload;
      workload.valueSize = 262144;
      workload.readRatio = 0.93;
      workload::SyntheticWorkload instance(workload);
      core::Deployment built(deployment);
      built.populateKv(instance);
      core::ExperimentRunner runner(experiment);
      const auto result = runner.run(built, instance);
      // Each cell owns exactly its slot: no cross-worker contention.
      blockStats[i].hits = built.db().blockCacheHits();
      blockStats[i].lookups =
          built.db().blockCacheHits() + built.db().blockCacheMisses();
      return result;
    });
  }
}

void addPolicyCells(core::ExperimentMatrix& matrix) {
  for (const cache::EvictionPolicy policy : kPolicies) {
    core::DeploymentConfig deployment;
    deployment.architecture = core::Architecture::kLinked;
    deployment.evictionPolicy = policy;
    // Cache sized well below the working set so the policy matters.
    deployment.appCachePerNode = util::Bytes::mb(1);

    core::ExperimentConfig experiment;
    experiment.operations = 200000;
    experiment.warmupOperations = 200000;
    experiment.qps = bench::kSyntheticQps;

    workload::MetaTraceConfig workload;  // skew + one-touch scan traffic
    bench::addCell(matrix, core::Architecture::kLinked,
                   workload::MetaTraceWorkload(workload), deployment,
                   experiment);
  }
}

void memorySplitTable(const std::vector<core::ExperimentResult>& results,
                      const std::vector<BlockCacheStats>& blockStats) {
  util::TablePrinter table({"linked_GB(total)", "storage_GB(total)", "hit%",
                            "block_hit%", "total_cost"});
  for (std::size_t i = 0; i < std::size(kAppGbPerNode); ++i) {
    const double appGbPerNode = kAppGbPerNode[i];
    const double storageGbPerNode = (kTotalGb - 3.0 * appGbPerNode) / 3.0;
    const auto& result = results[i];
    char hit[16];
    std::snprintf(hit, sizeof hit, "%.1f",
                  100.0 * result.counters.hitRatio());
    char blockHit[16];
    std::snprintf(blockHit, sizeof blockHit, "%.1f",
                  blockStats[i].lookups
                      ? 100.0 * static_cast<double>(blockStats[i].hits) /
                            static_cast<double>(blockStats[i].lookups)
                      : 0.0);
    table.addRow({util::TablePrinter::toCell(appGbPerNode * 3.0),
                  util::TablePrinter::toCell(storageGbPerNode * 3.0), hit,
                  blockHit, result.cost.totalCost.str()});
  }
  table.print("Hypothesis 2: fixed 24GB cache DRAM split between linked "
              "and storage-layer caches (256KB values, r=0.93)");
}

void evictionPolicyTable(const std::vector<core::ExperimentResult>& results,
                         std::size_t offset) {
  util::TablePrinter table({"policy", "hit%", "total_cost"});
  for (std::size_t i = 0; i < std::size(kPolicies); ++i) {
    const auto& result = results[offset + i];
    char hit[16];
    std::snprintf(hit, sizeof hit, "%.1f",
                  100.0 * result.counters.hitRatio());
    table.addRow({std::string(cache::evictionPolicyName(kPolicies[i])), hit,
                  result.cost.totalCost.str()});
  }
  table.print("\nEviction-policy ablation for the linked cache (Meta-style "
              "trace, cache << working set)");
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);
  std::vector<BlockCacheStats> blockStats(std::size(kAppGbPerNode));
  addSplitCells(matrix, blockStats);
  addPolicyCells(matrix);
  const std::vector<core::ExperimentResult> results = matrix.run();
  memorySplitTable(results, blockStats);
  evictionPolicyTable(results, std::size(kAppGbPerNode));
  bench::finishBench(results);
  return 0;
}
