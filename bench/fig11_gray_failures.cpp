// Figure 11 — gray failures and the cost of the nines: what a node that is
// sick-but-not-dead does to each architecture, and what it costs to defend
// against it. Hard crashes (fig9) are the easy case — the load balancer
// sees a dead pod and routes around it. A gray failure passes every health
// check: the node answers, just 10x slower, or drops a third of its
// messages, or is reachable from only one direction. All four
// architectures serve the synthetic workload through the same deterministic
// gray-fault timeline. Every tier gets a finite capacity (self-calibrated
// to 2x its steady CPU demand, as in fig10), because that is what makes a
// slow node dangerous in practice: its work takes 10x the core-micros, its
// queue outgrows the RPC timeout, and every request routed to it times out
// while the node still passes health checks. The timeline:
//
//   window 0-1  steady state
//   window 2-3  slow node: the cache-bearing node 0 runs --slow x slower
//               (CPU and every RPC leg it touches)
//   window 4    asymmetric partition: requests toward the cache (Remote)
//               or toward KV storage (others) are lost; replies and the
//               reverse direction still flow
//   window 5    flaky node: node 0 drops each message leg with --flakyp
//   window 6-7  recovery
//
// Each architecture runs the timeline three ways:
//   none     retries/timeouts only — the fig9 baseline posture
//   breaker  + per-destination circuit breakers (PR 4's defense; binary,
//            blind to slow-but-answering nodes)
//   full     + deterministic health monitoring with outlier ejection and
//            probing re-admission, and cache replication --rf with
//            replica-fallback reads and write-all fan-out
//
// Per window the bench reports p50/p99, hit ratio, goodput, ejections,
// fallback/stale replica reads and fan-out writes; the summary gives the
// tail drag per posture (the acceptance story: bare, the slow node drags
// p99 several-fold; full, the tail stays near steady), the detection lag,
// and the "cost of the nines" — the steady-state premium the defenses
// bill (fan-out CPU, probe traffic) against the provisioning headroom
// you'd need to ride the gray window out bare. Every cell is seeded from
// (--seed, cell index) alone, so output is byte-identical at any --jobs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/matrix.hpp"
#include "sim/fault.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

// Sweep roster: the kDisaggregated tail rides behind the --disagg gate
// (bench::sweepArchitectures strips it, restoring the original cells).
constexpr core::Architecture kArchs[] = {
    core::Architecture::kBase, core::Architecture::kRemote,
    core::Architecture::kLinked, core::Architecture::kLinkedVersion,
    core::Architecture::kDisaggregated};

enum class Posture : std::size_t { kNone = 0, kBreaker = 1, kFull = 2 };
constexpr std::size_t kPostures = 3;
constexpr const char* kPostureNames[kPostures] = {"none", "breaker", "full"};

constexpr std::size_t kWindows = 8;
constexpr const char* kPhases[kWindows] = {"steady",    "steady", "slow",
                                           "slow",      "partition", "flaky",
                                           "recover",   "recover"};
constexpr std::size_t kSlowFrom = 2, kSlowUntil = 4;   // windows [2,4)
constexpr std::size_t kPartitionWindow = 4;            // window  [4,5)
constexpr std::size_t kFlakyWindow = 5;                // window  [5,6)

struct Fig11Options {
  double slowFactor = 10.0;
  double flakyDrop = 0.3;
  std::size_t replicationFactor = 2;
};

/// fig11-specific flags (--slow X, --flakyp P, --rf N); the shared flags
/// were already consumed by parseBenchOptions.
Fig11Options parseFig11Options(int argc, char** argv) {
  Fig11Options options;
  const auto value = [&](int& i, std::string_view arg,
                         std::string_view flag) -> const char* {
    if (arg == flag) {
      if (i + 1 < argc) return argv[++i];
      return nullptr;
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = value(i, arg, "--slow")) {
      options.slowFactor = std::strtod(v, nullptr);
    } else if (const char* v = value(i, arg, "--flakyp")) {
      options.flakyDrop = std::strtod(v, nullptr);
    } else if (const char* v = value(i, arg, "--rf")) {
      options.replicationFactor = std::strtoull(v, nullptr, 10);
    }
  }
  return options;
}

/// Op counts, honoring the DCACHE_GOLDEN_OPS fast mode.
struct OpBudget {
  std::uint64_t warmupOps;
  std::uint64_t windowOps;
  std::uint64_t calibrateWarmOps;
  std::uint64_t calibrateOps;
};

OpBudget opBudget() {
  if (const std::uint64_t cap = core::goldenOpsCap(); cap > 0) {
    return {cap * 4, cap, cap, cap};
  }
  return {120000, 30000, 60000, 30000};
}

/// Provisioning headroom the capacities are calibrated to. Higher than
/// fig10's 2x on purpose: when a node is ejected its replica absorbs the
/// displaced traffic, so surviving a single-node gray failure needs the
/// remaining nodes to run doubled load below saturation.
constexpr double kHeadroomFactor = 3.0;

/// Per-tier steady CPU demand, measured against an unconstrained
/// deployment — the denominator the capacities are provisioned from.
struct TierDemand {
  double appMicrosPerSec = 0.0;
  double remoteMicrosPerSec = 0.0;
  double sqlMicrosPerSec = 0.0;
  double kvMicrosPerSec = 0.0;
};

TierDemand calibrateDemand(core::Architecture arch, const OpBudget& budget) {
  core::DeploymentConfig config;
  config.architecture = arch;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < budget.calibrateWarmOps; ++i) serveOne();
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < budget.calibrateOps; ++i) serveOne();

  const double seconds =
      static_cast<double>(budget.calibrateOps) / bench::kSyntheticQps;
  TierDemand demand;
  for (const sim::Tier* tier : deployment.tiers()) {
    const double perNodeMicrosPerSec = tier->aggregateCpu().totalMicros() /
                                 seconds /
                                 static_cast<double>(tier->size());
    switch (tier->kind()) {
      case sim::TierKind::kAppServer:
        demand.appMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kRemoteCache:
        demand.remoteMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kSqlFrontend:
        demand.sqlMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kKvStorage:
        demand.kvMicrosPerSec = perNodeMicrosPerSec;
        break;
      default:
        break;
    }
  }
  return demand;
}

/// Tier whose node 0 the gray faults target: wherever this architecture
/// keeps its cache-adjacent hot path. Base has no cache tier; its app node
/// going gray is the closest equivalent.
[[nodiscard]] sim::TierKind grayTier(core::Architecture arch) {
  switch (arch) {
    case core::Architecture::kRemote: return sim::TierKind::kRemoteCache;
    case core::Architecture::kDisaggregated: return sim::TierKind::kFarMemory;
    default: return sim::TierKind::kAppServer;
  }
}

struct WindowRow {
  double p50Micros = 0.0;
  double p99Micros = 0.0;
  double goodput = 1.0;  // fraction of ops whose client leg answered
  double hitRatio = 0.0;
  std::uint64_t degradedReads = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failedOps = 0;
  std::uint64_t breakerShortCircuits = 0;
  std::uint64_t ejected = 0;            // ejections detected this window
  std::uint64_t replicaFallbacks = 0;
  std::uint64_t staleReplicaReads = 0;
  std::uint64_t replicaWriteFanout = 0;
  double detectionLagMicros = 0.0;
  util::Money cost;  // this window's bill at the monthly rate
};

struct CellResult {
  std::string architecture;
  Posture posture = Posture::kNone;
  std::vector<WindowRow> windows;
  std::uint64_t totalEjections = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t probesGranted = 0;
  obs::TraceSummary trace;  // final window only (clearMeters resets it)
};

CellResult runGrayCell(std::size_t index, std::uint64_t rootSeed,
                       const Fig11Options& options, const OpBudget& budget,
                       const std::vector<core::Architecture>& archs) {
  const core::Architecture arch = archs[index % archs.size()];
  const Posture posture = static_cast<Posture>(index / archs.size());
  const TierDemand demand = calibrateDemand(arch, budget);

  core::DeploymentConfig config;
  config.architecture = arch;
  config.faultSeed = core::cellSeed(rootSeed, index);
  config.overload.appCapacityMicrosPerSec =
      demand.appMicrosPerSec * kHeadroomFactor;
  config.overload.remoteCacheCapacityMicrosPerSec =
      demand.remoteMicrosPerSec * kHeadroomFactor;
  config.overload.sqlCapacityMicrosPerSec =
      demand.sqlMicrosPerSec * kHeadroomFactor;
  config.overload.kvCapacityMicrosPerSec =
      demand.kvMicrosPerSec * kHeadroomFactor;
  if (posture == Posture::kBreaker || posture == Posture::kFull) {
    // Breakers alone (no tier capacities): the PR 4 defense at its best.
    config.overload.breakersEnabled = true;
    config.overload.breaker.openMicros = 20000.0;
  }
  if (posture == Posture::kFull) {
    config.health.enabled = true;
    config.cacheReplicationFactor = options.replicationFactor;
  }
  config = bench::withBenchTrace(config);
  core::Deployment deployment(config);

  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  auto windowStartMicros = [&](std::size_t window) {
    return static_cast<std::uint64_t>(
        microsPerOp *
        static_cast<double>(budget.warmupOps + window * budget.windowOps));
  };

  for (std::uint64_t i = 0; i < budget.warmupOps; ++i) serveOne();

  sim::FaultSchedule faults;
  const sim::TierKind tier = grayTier(arch);
  faults.slowNode(windowStartMicros(kSlowFrom), windowStartMicros(kSlowUntil),
                  tier, 0, options.slowFactor);
  if (arch == core::Architecture::kRemote) {
    // Requests toward the cache are lost; replies still flow — the cache
    // looks healthy from its own side while every client call times out.
    faults.partialPartition(windowStartMicros(kPartitionWindow),
                            windowStartMicros(kPartitionWindow + 1),
                            sim::TierKind::kAppServer,
                            sim::TierKind::kRemoteCache);
  } else if (arch == core::Architecture::kDisaggregated) {
    // One-sided reads toward the far-memory pool are lost; the pool itself
    // is healthy, so only the clients see the outage.
    faults.partialPartition(windowStartMicros(kPartitionWindow),
                            windowStartMicros(kPartitionWindow + 1),
                            sim::TierKind::kAppServer,
                            sim::TierKind::kFarMemory);
  } else {
    // SQL -> KV requests are lost: the miss path (and Base's every read)
    // stalls while a warm cache shields whatever it already holds.
    faults.partialPartition(windowStartMicros(kPartitionWindow),
                            windowStartMicros(kPartitionWindow + 1),
                            sim::TierKind::kSqlFrontend,
                            sim::TierKind::kKvStorage);
  }
  faults.flakyNode(windowStartMicros(kFlakyWindow),
                   windowStartMicros(kFlakyWindow + 1), tier, 0,
                   options.flakyDrop);
  deployment.installFaultSchedule(std::move(faults));

  const core::ExperimentConfig experiment;  // pricing + utilization defaults
  const core::CostModel model(experiment.pricing,
                              experiment.targetUtilization);
  const double windowSeconds =
      static_cast<double>(budget.windowOps) / bench::kSyntheticQps;

  CellResult cell;
  cell.architecture = std::string(core::architectureName(arch));
  cell.posture = posture;
  for (std::size_t w = 0; w < kWindows; ++w) {
    deployment.clearMeters();
    for (std::uint64_t i = 0; i < budget.windowOps; ++i) serveOne();
    const core::ServeCounters& c = deployment.counters();
    WindowRow row;
    row.p50Micros = deployment.latencies().p50();
    row.p99Micros = deployment.latencies().p99();
    const double ops = static_cast<double>(budget.windowOps);
    row.goodput = (ops - static_cast<double>(c.failedOps)) / ops;
    row.hitRatio = c.hitRatio();
    row.degradedReads = c.degradedReads;
    row.retries = c.retries;
    row.timeouts = c.timeouts;
    row.failedOps = c.failedOps;
    row.breakerShortCircuits = c.breakerShortCircuits;
    row.ejected = c.ejectedNodes;
    row.replicaFallbacks = c.replicaFallbackReads;
    row.staleReplicaReads = c.staleReplicaReads;
    row.replicaWriteFanout = c.replicaWriteFanout;
    row.detectionLagMicros = c.detectionLagMicros;
    row.cost = model
                   .breakdown(deployment.tiers(), windowSeconds,
                              deployment.db().totalStoredBytes(),
                              config.replicationFactor)
                   .totalCost;
    cell.windows.push_back(row);
  }
  if (const core::HealthMonitor* monitor = deployment.healthMonitor()) {
    cell.totalEjections = monitor->totalEjections();
    cell.readmissions = monitor->readmissions();
    cell.probesGranted = monitor->probesGranted();
  }
  if (const obs::Tracer* tracer = deployment.tracer()) {
    cell.trace = tracer->summary();
  }
  return cell;
}

void printCell(const CellResult& cell, const OpBudget& budget) {
  util::TablePrinter table({"window", "phase", "p50_us", "p99_us", "goodput",
                            "hit_ratio", "degraded", "retries", "timeouts",
                            "failed", "brk_sc", "eject", "fallback", "stale",
                            "fanout", "window_cost"});
  for (std::size_t w = 0; w < cell.windows.size(); ++w) {
    const WindowRow& row = cell.windows[w];
    table.row(static_cast<unsigned long long>(w), kPhases[w], row.p50Micros,
              row.p99Micros, row.goodput, row.hitRatio,
              static_cast<unsigned long long>(row.degradedReads),
              static_cast<unsigned long long>(row.retries),
              static_cast<unsigned long long>(row.timeouts),
              static_cast<unsigned long long>(row.failedOps),
              static_cast<unsigned long long>(row.breakerShortCircuits),
              static_cast<unsigned long long>(row.ejected),
              static_cast<unsigned long long>(row.replicaFallbacks),
              static_cast<unsigned long long>(row.staleReplicaReads),
              static_cast<unsigned long long>(row.replicaWriteFanout),
              row.cost.str());
  }
  char title[160];
  std::snprintf(
      title, sizeof title,
      "\nFigure 11 [%s, defenses=%s]: gray-failure timeline (%lluK-op "
      "windows)",
      cell.architecture.c_str(),
      kPostureNames[static_cast<std::size_t>(cell.posture)],
      static_cast<unsigned long long>(budget.windowOps / 1000));
  table.print(title);
}

/// Steady-state reference latency: window 1 (window 0 still carries a
/// little residual warmup drift in some cells).
double steadyP99(const CellResult& cell) { return cell.windows[1].p99Micros; }

/// Worst tail across the *slow-node* windows 2-3 only — the headline gray
/// failure (the partition window is a partial outage, a different story).
double worstSlowP99(const CellResult& cell) {
  double worst = 0.0;
  for (std::size_t w = kSlowFrom; w < kSlowUntil && w < cell.windows.size();
       ++w) {
    worst = std::max(worst, cell.windows[w].p99Micros);
  }
  return worst;
}

double totalDetectionLagMicros(const CellResult& cell) {
  double total = 0.0;
  for (const WindowRow& row : cell.windows) total += row.detectionLagMicros;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  const Fig11Options fig11 = parseFig11Options(argc, argv);
  const core::MatrixOptions& options = benchOptions.matrix;
  const OpBudget budget = opBudget();

  util::ThreadPool pool(options.jobs);
  const std::vector<core::Architecture> archs =
      bench::sweepArchitectures(kArchs);
  const std::size_t cellCount = kPostures * archs.size();
  const std::vector<CellResult> cells =
      util::mapOrdered(pool, cellCount,
                       [&options, &fig11, &budget, &archs](std::size_t i) {
                         return runGrayCell(i, options.rootSeed, fig11,
                                            budget, archs);
                       });
  pool.wait();

  for (const CellResult& cell : cells) printCell(cell, budget);

  // The tail-drag verdict: how far the slow node drags p99 off each
  // posture's own steady state. The acceptance story: bare, several-fold;
  // full (ejection + replicas), the tail stays near steady.
  util::TablePrinter verdict({"architecture", "p99_steady", "drag_none",
                              "drag_breaker", "drag_full", "ejections",
                              "readmits", "detect_ms"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& none = cells[a];
    const CellResult& breaker = cells[a + archs.size()];
    const CellResult& full = cells[a + 2 * archs.size()];
    const auto drag = [](const CellResult& cell) {
      const double steady = steadyP99(cell);
      return steady > 0.0 ? worstSlowP99(cell) / steady : 0.0;
    };
    char dragNone[24], dragBreaker[24], dragFull[24], detect[24];
    std::snprintf(dragNone, sizeof dragNone, "%.2fx", drag(none));
    std::snprintf(dragBreaker, sizeof dragBreaker, "%.2fx", drag(breaker));
    std::snprintf(dragFull, sizeof dragFull, "%.2fx", drag(full));
    const double lagMicros = totalDetectionLagMicros(full);
    std::snprintf(detect, sizeof detect, "%.1f",
                  full.totalEjections > 0
                      ? lagMicros / 1000.0 /
                            static_cast<double>(full.totalEjections)
                      : 0.0);
    verdict.row(none.architecture, steadyP99(none), dragNone, dragBreaker,
                dragFull, static_cast<unsigned long long>(full.totalEjections),
                static_cast<unsigned long long>(full.readmissions), detect);
  }
  char verdictTitle[200];
  std::snprintf(verdictTitle, sizeof verdictTitle,
                "\nFigure 11 verdict: slow-node (%.0fx) p99 drag vs own "
                "steady state, by defense posture (avg detection lag in ms)",
                fig11.slowFactor);
  verdict.print(verdictTitle);

  // The cost of the nines: the full posture bills its premium every hour
  // of steady state (fan-out writes, probe traffic, replica fills); the
  // bare posture pays nothing until the gray window, where its worst-hour
  // bill — the headroom an auto-scaler would provision for — spikes.
  util::TablePrinter nines({"architecture", "steady_bare", "steady_full",
                            "nines_premium", "peak_bare", "bare_headroom"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& none = cells[a];
    const CellResult& full = cells[a + 2 * archs.size()];
    const util::Money steadyBare = none.windows[1].cost;
    const util::Money steadyFull = full.windows[1].cost;
    util::Money peakBare = steadyBare;
    for (const WindowRow& row : none.windows) {
      if (row.cost.micros() > peakBare.micros()) peakBare = row.cost;
    }
    const auto deltaPct = [](const util::Money& base,
                             const util::Money& other) {
      return base.micros() > 0
                 ? (static_cast<double>(other.micros()) /
                        static_cast<double>(base.micros()) -
                    1.0) * 100.0
                 : 0.0;
    };
    char premium[24], headroom[24];
    std::snprintf(premium, sizeof premium, "+%.1f%%",
                  deltaPct(steadyBare, steadyFull));
    std::snprintf(headroom, sizeof headroom, "+%.1f%%",
                  deltaPct(steadyBare, peakBare));
    nines.row(none.architecture, steadyBare.str(), steadyFull.str(), premium,
              peakBare.str(), headroom);
  }
  nines.print("\nFigure 11 cost of the nines: always-on defense premium vs "
              "the headroom a bare deployment provisions for its worst "
              "gray window");

  if (benchOptions.trace.enabled()) {
    // clearMeters resets the tracer per window, so the summary covers the
    // final (recover) window.
    for (const CellResult& cell : cells) {
      core::ExperimentResult result;
      result.architecture =
          cell.architecture + "." +
          kPostureNames[static_cast<std::size_t>(cell.posture)];
      result.trace = cell.trace;
      std::printf("\n%s",
                  core::traceTreeReport(result,
                                        "trace fig11." + result.architecture +
                                            " (final window)",
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!benchOptions.metricsOut.empty()) {
    obs::MetricsRegistry registry;
    for (const CellResult& cell : cells) {
      const std::string prefix =
          "fig11." + cell.architecture + "." +
          kPostureNames[static_cast<std::size_t>(cell.posture)] + ".";
      for (std::size_t w = 0; w < cell.windows.size(); ++w) {
        const WindowRow& row = cell.windows[w];
        const std::string base = prefix + "window_" + std::to_string(w) + ".";
        registry.setGauge(base + "p50_us", row.p50Micros);
        registry.setGauge(base + "p99_us", row.p99Micros);
        registry.setGauge(base + "goodput", row.goodput);
        registry.setGauge(base + "hit_ratio", row.hitRatio);
        registry.setCounter(base + "degraded_reads", row.degradedReads);
        registry.setCounter(base + "retries", row.retries);
        registry.setCounter(base + "timeouts", row.timeouts);
        registry.setCounter(base + "failed_ops", row.failedOps);
        registry.setCounter(base + "breaker_short_circuits",
                            row.breakerShortCircuits);
        registry.setCounter(base + "ejected_nodes", row.ejected);
        registry.setCounter(base + "replica_fallback_reads",
                            row.replicaFallbacks);
        registry.setCounter(base + "stale_replica_reads",
                            row.staleReplicaReads);
        registry.setCounter(base + "replica_write_fanout",
                            row.replicaWriteFanout);
        registry.setGauge(base + "detection_lag_micros",
                          row.detectionLagMicros);
        registry.setGauge(base + "window_cost_usd", row.cost.dollars());
      }
      registry.setCounter(prefix + "total_ejections", cell.totalEjections);
      registry.setCounter(prefix + "readmissions", cell.readmissions);
      registry.setCounter(prefix + "probes_granted", cell.probesGranted);
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
