// Figure 2 — theoretical model (§4).
//   (a) Cost saving vs Zipf alpha: Linked (s_A = 8GB, s_D = 1GB) vs Base
//       (1GB of in-storage cache).
//   (b) Cost saving vs number of cache replicas N_r, at memory price
//       multipliers 1x / 10x / 40x.
// Plus the §4 takeaways: |dT/ds_A| > |dT/ds_D| across skews, and the
// optimal linked-cache allocation where the marginal benefit meets the
// memory price.
#include <cstdio>

#include "core/model.hpp"
#include "util/table_printer.hpp"

using namespace dcache;

namespace {

core::ModelParams baseParams() {
  core::ModelParams params;  // measured c_A/c_D, 100K keys, 23KB objects
  return params;
}

void figure2a() {
  util::TablePrinter table(
      {"alpha", "MR(8GB)", "MR(1GB)", "T_base", "T_linked", "saving"});
  for (const double alpha : {0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4}) {
    core::ModelParams params = baseParams();
    params.alpha = alpha;
    const core::TheoreticalModel model(params);
    const auto sA = util::Bytes::gb(8);
    const auto sD = util::Bytes::gb(1);
    const auto base = model.totalCost(util::Bytes::of(0), sD);
    const auto linked = model.totalCost(sA, sD);
    char saving[16];
    std::snprintf(saving, sizeof saving, "%.2fx", base / linked);
    table.addRow({util::TablePrinter::toCell(alpha),
                  util::TablePrinter::toCell(model.missRatio(sA)),
                  util::TablePrinter::toCell(model.missRatio(sD)),
                  base.str(), linked.str(), saving});
  }
  table.print(
      "Figure 2a: cost saving vs Zipf alpha — Linked(sA=8GB,sD=1GB) vs "
      "Base(1GB in-storage)");
}

void figure2b() {
  util::TablePrinter table({"N_r", "saving@1x", "saving@10x", "saving@40x"});
  for (const double replicas : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    std::vector<std::string> row{util::TablePrinter::toCell(replicas)};
    for (const double multiplier : {1.0, 10.0, 40.0}) {
      core::ModelParams params = baseParams();
      params.replicas = replicas;
      params.pricing = core::Pricing::gcp().withMemoryMultiplier(multiplier);
      const core::TheoreticalModel model(params);
      // At steep memory prices the operator would shrink the cache; use
      // the optimal allocation per configuration, as the paper's takeaway
      // ("adding caches still saves cost") is about the best achievable.
      const auto best =
          model.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(16));
      const double saving = model.savingVsBase(best, util::Bytes::gb(1),
                                               util::Bytes::gb(1));
      char buf[24];
      std::snprintf(buf, sizeof buf, "%.2fx (sA=%s)", saving,
                    best.str().c_str());
      row.emplace_back(buf);
    }
    table.addRow(std::move(row));
  }
  table.print(
      "\nFigure 2b: cost saving vs replicas N_r at DRAM price 1x/10x/40x "
      "(optimal sA per cell)");
}

void takeaways() {
  util::TablePrinter table(
      {"alpha", "dT/dsA ($/GB)", "dT/dsD ($/GB)", "|dT/dsA|>|dT/dsD|"});
  for (const double alpha : {0.8, 1.0, 1.2, 1.4}) {
    core::ModelParams params = baseParams();
    params.alpha = alpha;
    const core::TheoreticalModel model(params);
    const auto sA = util::Bytes::mb(256);
    const auto sD = util::Bytes::mb(256);
    const double dA = model.dTdAppCache(sA, sD);
    const double dD = model.dTdStorageCache(sA, sD);
    table.addRow({util::TablePrinter::toCell(alpha),
                  util::TablePrinter::toCell(dA),
                  util::TablePrinter::toCell(dD),
                  std::abs(dA) > std::abs(dD) ? "yes" : "NO"});
  }
  table.print("\nSection 4 takeaway: marginal value of app cache vs storage "
              "cache (at sA=sD=256MB)");

  const core::TheoreticalModel model(baseParams());
  const auto best =
      model.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(32));
  std::printf(
      "\nOptimal linked-cache allocation (sD=1GB): sA*=%s, total cost %s "
      "(gradient %.3f $/GB)\n",
      best.str().c_str(),
      model.totalCost(best, util::Bytes::gb(1)).str().c_str(),
      model.dTdAppCache(best, util::Bytes::gb(1)));
}

}  // namespace

int main() {
  figure2a();
  figure2b();
  takeaways();
  return 0;
}
