// Figure 2 — theoretical model (§4).
//   (a) Cost saving vs Zipf alpha: Linked (s_A = 8GB, s_D = 1GB) vs Base
//       (1GB of in-storage cache).
//   (b) Cost saving vs number of cache replicas N_r, at memory price
//       multipliers 1x / 10x / 40x.
// Plus the §4 takeaways: |dT/ds_A| > |dT/ds_D| across skews, and the
// optimal linked-cache allocation where the marginal benefit meets the
// memory price.
// Each sweep row is an independent model evaluation, fanned out over the
// worker pool (--jobs N / DCACHE_JOBS); rows print in submission order.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/matrix.hpp"
#include "core/model.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

using namespace dcache;

namespace {

constexpr double kAlphas2a[] = {0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4};
constexpr double kReplicas2b[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
constexpr double kMultipliers2b[] = {1.0, 10.0, 40.0};
constexpr double kAlphasTakeaway[] = {0.8, 1.0, 1.2, 1.4};

core::ModelParams baseParams() {
  core::ModelParams params;  // measured c_A/c_D, 100K keys, 23KB objects
  return params;
}

void figure2a(util::ThreadPool& pool) {
  const auto rows =
      util::mapOrdered(pool, std::size(kAlphas2a), [](std::size_t i) {
        core::ModelParams params = baseParams();
        params.alpha = kAlphas2a[i];
        const core::TheoreticalModel model(params);
        const auto sA = util::Bytes::gb(8);
        const auto sD = util::Bytes::gb(1);
        const auto base = model.totalCost(util::Bytes::of(0), sD);
        const auto linked = model.totalCost(sA, sD);
        char saving[16];
        std::snprintf(saving, sizeof saving, "%.2fx", base / linked);
        return std::vector<std::string>{
            util::TablePrinter::toCell(params.alpha),
            util::TablePrinter::toCell(model.missRatio(sA)),
            util::TablePrinter::toCell(model.missRatio(sD)),
            base.str(), linked.str(), saving};
      });
  util::TablePrinter table(
      {"alpha", "MR(8GB)", "MR(1GB)", "T_base", "T_linked", "saving"});
  for (auto row : rows) table.addRow(std::move(row));
  table.print(
      "Figure 2a: cost saving vs Zipf alpha — Linked(sA=8GB,sD=1GB) vs "
      "Base(1GB in-storage)");
}

void figure2b(util::ThreadPool& pool) {
  const auto rows =
      util::mapOrdered(pool, std::size(kReplicas2b), [](std::size_t i) {
        const double replicas = kReplicas2b[i];
        std::vector<std::string> row{util::TablePrinter::toCell(replicas)};
        for (const double multiplier : kMultipliers2b) {
          core::ModelParams params = baseParams();
          params.replicas = replicas;
          params.pricing =
              core::Pricing::gcp().withMemoryMultiplier(multiplier);
          const core::TheoreticalModel model(params);
          // At steep memory prices the operator would shrink the cache; use
          // the optimal allocation per configuration, as the paper's
          // takeaway ("adding caches still saves cost") is about the best
          // achievable.
          const auto best =
              model.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(16));
          const double saving = model.savingVsBase(best, util::Bytes::gb(1),
                                                   util::Bytes::gb(1));
          char buf[24];
          std::snprintf(buf, sizeof buf, "%.2fx (sA=%s)", saving,
                        best.str().c_str());
          row.emplace_back(buf);
        }
        return row;
      });
  util::TablePrinter table({"N_r", "saving@1x", "saving@10x", "saving@40x"});
  for (auto row : rows) table.addRow(std::move(row));
  table.print(
      "\nFigure 2b: cost saving vs replicas N_r at DRAM price 1x/10x/40x "
      "(optimal sA per cell)");
}

void takeaways(util::ThreadPool& pool) {
  const auto rows =
      util::mapOrdered(pool, std::size(kAlphasTakeaway), [](std::size_t i) {
        core::ModelParams params = baseParams();
        params.alpha = kAlphasTakeaway[i];
        const core::TheoreticalModel model(params);
        const auto sA = util::Bytes::mb(256);
        const auto sD = util::Bytes::mb(256);
        const double dA = model.dTdAppCache(sA, sD);
        const double dD = model.dTdStorageCache(sA, sD);
        return std::vector<std::string>{
            util::TablePrinter::toCell(params.alpha),
            util::TablePrinter::toCell(dA), util::TablePrinter::toCell(dD),
            std::abs(dA) > std::abs(dD) ? "yes" : "NO"};
      });
  util::TablePrinter table(
      {"alpha", "dT/dsA ($/GB)", "dT/dsD ($/GB)", "|dT/dsA|>|dT/dsD|"});
  for (auto row : rows) table.addRow(std::move(row));
  table.print("\nSection 4 takeaway: marginal value of app cache vs storage "
              "cache (at sA=sD=256MB)");

  const core::TheoreticalModel model(baseParams());
  const auto best =
      model.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(32));
  std::printf(
      "\nOptimal linked-cache allocation (sD=1GB): sA*=%s, total cost %s "
      "(gradient %.3f $/GB)\n",
      best.str().c_str(),
      model.totalCost(best, util::Bytes::gb(1)).str().c_str(),
      model.dTdAppCache(best, util::Bytes::gb(1)));
}

void disaggPanel(util::ThreadPool& pool) {
  // Fifth-architecture extension: a 512MB DRAM hot cache per replica set
  // backed by a 16GB far-memory pool at the far $/GB rate, against the
  // Fig. 2a Linked allocation. The crossover the simulation reproduces:
  // heavy skew keeps the hot cache hitting (disagg wins on memory price);
  // flat skew makes every read pay the one-sided fixed cost (Linked wins).
  const auto rows =
      util::mapOrdered(pool, std::size(kAlphas2a), [](std::size_t i) {
        core::ModelParams params = baseParams();
        params.alpha = kAlphas2a[i];
        const core::TheoreticalModel model(params);
        const auto sHot = util::Bytes::mb(512);
        const auto sFar = util::Bytes::gb(16);
        const auto sD = util::Bytes::gb(1);
        const auto linked = model.totalCost(util::Bytes::gb(8), sD);
        const auto disagg = model.totalCostDisagg(sHot, sFar, sD);
        char vsLinked[16];
        std::snprintf(vsLinked, sizeof vsLinked, "%.2fx", linked / disagg);
        return std::vector<std::string>{
            util::TablePrinter::toCell(params.alpha),
            util::TablePrinter::toCell(model.missRatio(sHot)),
            util::TablePrinter::toCell(model.missRatio(sHot + sFar)),
            disagg.str(), linked.str(), vsLinked};
      });
  util::TablePrinter table({"alpha", "MR(hot)", "MR(hot+far)", "T_disagg",
                            "T_linked", "linked/disagg"});
  for (auto row : rows) table.addRow(std::move(row));
  table.print(
      "\nFigure 2c: disaggregated (hot=512MB, far=16GB @ far-memory rate) "
      "vs Linked(sA=8GB) — >1x means disagg is cheaper");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  util::ThreadPool pool(benchOptions.matrix.jobs);
  figure2a(pool);
  figure2b(pool);
  takeaways(pool);
  if (benchOptions.disagg) disaggPanel(pool);
  if (!benchOptions.metricsOut.empty()) {
    // Analytic bench: no deployments, so export the model's headline
    // numbers (per-alpha savings) directly.
    obs::MetricsRegistry registry;
    for (const double alpha : kAlphas2a) {
      core::ModelParams params = baseParams();
      params.alpha = alpha;
      const core::TheoreticalModel model(params);
      const auto base =
          model.totalCost(util::Bytes::of(0), util::Bytes::gb(1));
      const auto linked =
          model.totalCost(util::Bytes::gb(8), util::Bytes::gb(1));
      char name[48];
      std::snprintf(name, sizeof name, "fig2a.alpha_%.1f.saving", alpha);
      registry.setGauge(name, base / linked);
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
