// dcache-lint: allow-file(bench-hygiene, Google-Benchmark microbench — stdout carries wall-clock timings and can never be byte-deterministic, so it is excluded from the determinism diff and golden gates)
// Micro-benchmarks for the real wire codec. These calibrate (and verify)
// the serialization cost model: encode and decode must be linear in payload
// bytes with a small per-message constant — the assumption the experiment
// hot path's analytic charging rests on. Compare bytes_per_second here
// against SerializationParams (~1 GB/s encode, ~0.6 GB/s decode).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "rpc/batch.hpp"
#include "rpc/messages.hpp"
#include "rpc/wire.hpp"

namespace {

using namespace dcache;

void BM_EncodeGetResponse(benchmark::State& state) {
  rpc::GetResponse resp;
  resp.found = true;
  resp.version = 123456789;
  resp.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    rpc::WireEncoder enc;
    resp.encode(enc);
    benchmark::DoNotOptimize(enc.view().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(resp.encodedSize()));
}
BENCHMARK(BM_EncodeGetResponse)->Range(64, 1 << 20);

void BM_DecodeGetResponse(benchmark::State& state) {
  rpc::GetResponse resp;
  resp.found = true;
  resp.version = 42;
  resp.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  rpc::WireEncoder enc;
  resp.encode(enc);
  const std::string bytes(enc.view());
  for (auto _ : state) {
    auto decoded = rpc::GetResponse::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeGetResponse)->Range(64, 1 << 20);

void BM_VarintEncode(benchmark::State& state) {
  std::uint64_t v = 0x123456789abcULL;
  for (auto _ : state) {
    rpc::WireEncoder enc;
    for (int i = 0; i < 64; ++i) enc.writeVarint(v + static_cast<std::uint64_t>(i));
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  rpc::WireEncoder enc;
  for (int i = 0; i < 64; ++i) {
    enc.writeVarint(0x123456789abcULL + static_cast<std::uint64_t>(i));
  }
  const std::string bytes(enc.view());
  for (auto _ : state) {
    rpc::WireDecoder dec(bytes);
    std::uint64_t sum = 0;
    while (!dec.done()) sum += dec.readVarint().value_or(0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VarintDecode);

// Batched request buffers vs per-op message objects: the same 64 cache ops
// shipped as one RequestBatch (arena reused across iterations — the serve
// loop's steady state) against 64 individually constructed GetRequests each
// with its own encoder. This is the allocation ablation behind the batch
// subsystem.
void BM_BatchEncode(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) keys.push_back("user:" + std::to_string(i));
  rpc::RequestBatch batch;
  for (auto _ : state) {
    batch.clear();  // keeps the arena: zero allocations at steady state
    for (const auto& key : keys) batch.appendGet(key);
    benchmark::DoNotOptimize(batch.encodedSize());
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_BatchEncode)->Arg(16)->Arg(64)->Arg(256);

void BM_PerOpEncode(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) keys.push_back("user:" + std::to_string(i));
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const auto& key : keys) {
      rpc::GetRequest req;
      req.key = key;
      rpc::WireEncoder enc;
      req.encode(enc);
      total += enc.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_PerOpEncode)->Arg(16)->Arg(64)->Arg(256);

void BM_BatchDecode(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  rpc::RequestBatch batch;
  for (int i = 0; i < ops; ++i) {
    batch.appendPut("user:" + std::to_string(i), "payload-bytes",
                    static_cast<std::uint64_t>(i));
  }
  rpc::WireEncoder enc;
  batch.encode(enc);
  const std::string bytes(enc.view());
  for (auto _ : state) {
    auto reader = rpc::BatchReader::decode(bytes);
    std::uint64_t sum = 0;
    rpc::BatchItem item;
    while (reader && reader->next(item)) sum += item.key.size();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_BatchDecode)->Arg(16)->Arg(64)->Arg(256);

void BM_SqlRequestRoundtrip(benchmark::State& state) {
  const rpc::SqlRequest req{
      "SELECT * FROM privileges WHERE securable_id = ?", {"tbl12345"}};
  for (auto _ : state) {
    rpc::WireEncoder enc;
    req.encode(enc);
    auto back = rpc::SqlRequest::decode(enc.view());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SqlRequestRoundtrip);

}  // namespace
