// dcache-lint: allow-file(bench-hygiene, Google-Benchmark microbench — stdout carries wall-clock timings and can never be byte-deterministic, so it is excluded from the determinism diff and golden gates)
// Micro-benchmarks for the real wire codec. These calibrate (and verify)
// the serialization cost model: encode and decode must be linear in payload
// bytes with a small per-message constant — the assumption the experiment
// hot path's analytic charging rests on. Compare bytes_per_second here
// against SerializationParams (~1 GB/s encode, ~0.6 GB/s decode).
#include <benchmark/benchmark.h>

#include <string>

#include "rpc/messages.hpp"
#include "rpc/wire.hpp"

namespace {

using namespace dcache;

void BM_EncodeGetResponse(benchmark::State& state) {
  rpc::GetResponse resp;
  resp.found = true;
  resp.version = 123456789;
  resp.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    rpc::WireEncoder enc;
    resp.encode(enc);
    benchmark::DoNotOptimize(enc.view().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(resp.encodedSize()));
}
BENCHMARK(BM_EncodeGetResponse)->Range(64, 1 << 20);

void BM_DecodeGetResponse(benchmark::State& state) {
  rpc::GetResponse resp;
  resp.found = true;
  resp.version = 42;
  resp.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  rpc::WireEncoder enc;
  resp.encode(enc);
  const std::string bytes(enc.view());
  for (auto _ : state) {
    auto decoded = rpc::GetResponse::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeGetResponse)->Range(64, 1 << 20);

void BM_VarintEncode(benchmark::State& state) {
  std::uint64_t v = 0x123456789abcULL;
  for (auto _ : state) {
    rpc::WireEncoder enc;
    for (int i = 0; i < 64; ++i) enc.writeVarint(v + static_cast<std::uint64_t>(i));
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  rpc::WireEncoder enc;
  for (int i = 0; i < 64; ++i) {
    enc.writeVarint(0x123456789abcULL + static_cast<std::uint64_t>(i));
  }
  const std::string bytes(enc.view());
  for (auto _ : state) {
    rpc::WireDecoder dec(bytes);
    std::uint64_t sum = 0;
    while (!dec.done()) sum += dec.readVarint().value_or(0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VarintDecode);

void BM_SqlRequestRoundtrip(benchmark::State& state) {
  const rpc::SqlRequest req{
      "SELECT * FROM privileges WHERE securable_id = ?", {"tbl12345"}};
  for (auto _ : state) {
    rpc::WireEncoder enc;
    req.encode(enc);
    auto back = rpc::SqlRequest::decode(enc.view());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SqlRequestRoundtrip);

}  // namespace
