// Figure 12 — membership churn: what planned topology change (rolling
// restarts, scale events, drains) costs each architecture, and whether warm
// key handoff buys its bandwidth back. fig9 crashed nodes; here every
// transition is *planned*, which means the system gets to choose a posture:
//
//   cold  ownership moves instantly and the departing shard dies with the
//         process — zero handoff bandwidth, full miss cliff (every moved
//         key is re-read from storage on first touch).
//   warm  the same schedule with handoff enabled: a leaving node drains out
//         of the ring but keeps serving through a bounded transfer window
//         while a background pump migrates its keys to the new owners in
//         rate-limited, RPC-batched transfers; misses at the new owner
//         dual-read the old owner before storage; writes that land
//         mid-window fence the old copy so nothing stale is resurrected.
//
// All five architectures run the same deterministic churn timeline against
// the tier that carries their cache state (Remote: cache pods, Disagg: the
// far-memory pool, others: the app tier):
//
//   window 0-1  steady state
//   window 2-3  rolling-restart wave: nodes 0 and 1 drain out and rejoin
//               half a window later, one per window (the deploy train)
//   window 4    scale-out: a provisioned-but-absent spare joins the ring
//   window 5    flash drain: node 2 leaves for good (scale-in, no rejoin)
//   window 6-7  recovery
//
// Per window the bench reports p50/p99, hit ratio, storage amplification
// (storage reads per read — the miss-storm metric), migration volume and
// fencing actions; the verdict tables give the churn-window p99 drag and
// amplification per posture, and the handoff bill: the $/op premium warm
// handoff pays during churn vs the peak-window bill a cold deployment must
// overprovision for. Every cell is seeded from (--seed, cell index) alone,
// so output is byte-identical at any --jobs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/matrix.hpp"
#include "core/membership.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

// Sweep roster: the kDisaggregated tail rides behind the --disagg gate
// (bench::sweepArchitectures strips it, restoring the original cells).
constexpr core::Architecture kArchs[] = {
    core::Architecture::kBase, core::Architecture::kRemote,
    core::Architecture::kLinked, core::Architecture::kLinkedVersion,
    core::Architecture::kDisaggregated};

enum class Posture : std::size_t { kCold = 0, kWarm = 1 };
constexpr std::size_t kPostures = 2;
constexpr const char* kPostureNames[kPostures] = {"cold", "warm"};

constexpr std::size_t kWindows = 8;
constexpr const char* kPhases[kWindows] = {"steady",   "steady",  "restart",
                                           "restart",  "scaleout", "drain",
                                           "recover",  "recover"};
constexpr std::size_t kRestartFrom = 2;   // windows [2,4): the deploy train
constexpr std::size_t kScaleOutWindow = 4;
constexpr std::size_t kDrainWindow = 5;
constexpr std::size_t kChurnFrom = 2, kChurnUntil = 6;  // churn windows [2,6)

struct Fig12Options {
  // The pump runs in the background QoS class (metered and billed, but
  // never queued ahead of foreground requests), so pacing only bounds how
  // much bandwidth the handoff bill line shows per window.
  std::size_t handoffKeysPerBatch = 512;
  std::uint64_t handoffBatchIntervalMicros = 1000;
};

/// fig12-specific flags (--hkeys N, --hinterval US); the shared flags were
/// already consumed by parseBenchOptions.
Fig12Options parseFig12Options(int argc, char** argv) {
  Fig12Options options;
  const auto value = [&](int& i, std::string_view arg,
                         std::string_view flag) -> const char* {
    if (arg == flag) {
      if (i + 1 < argc) return argv[++i];
      return nullptr;
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = value(i, arg, "--hkeys")) {
      options.handoffKeysPerBatch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value(i, arg, "--hinterval")) {
      options.handoffBatchIntervalMicros = std::strtoull(v, nullptr, 10);
    }
  }
  return options;
}

/// Op counts, honoring the DCACHE_GOLDEN_OPS fast mode.
struct OpBudget {
  std::uint64_t warmupOps;
  std::uint64_t windowOps;
  std::uint64_t calibrateWarmOps;
  std::uint64_t calibrateOps;
};

OpBudget opBudget() {
  if (const std::uint64_t cap = core::goldenOpsCap(); cap > 0) {
    return {cap * 4, cap, cap, cap};
  }
  return {120000, 30000, 60000, 30000};
}

/// Provisioning headroom the tier capacities are calibrated to (as in
/// fig10/fig11). 2x is enough to serve steady state comfortably but turns
/// a cold reshard's miss storm into real queueing at SQL/KV — which is
/// exactly why operators overprovision through deploy trains.
constexpr double kHeadroomFactor = 2.0;

/// Per-tier steady CPU demand, measured against an unconstrained
/// deployment — the denominator the capacities are provisioned from.
struct TierDemand {
  double appMicrosPerSec = 0.0;
  double remoteMicrosPerSec = 0.0;
  double sqlMicrosPerSec = 0.0;
  double kvMicrosPerSec = 0.0;
};

TierDemand calibrateDemand(core::Architecture arch, const OpBudget& budget) {
  core::DeploymentConfig config;
  config.architecture = arch;
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  for (std::uint64_t i = 0; i < budget.calibrateWarmOps; ++i) serveOne();
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < budget.calibrateOps; ++i) serveOne();

  const double seconds =
      static_cast<double>(budget.calibrateOps) / bench::kSyntheticQps;
  TierDemand demand;
  for (const sim::Tier* tier : deployment.tiers()) {
    const double perNodeMicrosPerSec = tier->aggregateCpu().totalMicros() /
                                 seconds /
                                 static_cast<double>(tier->size());
    switch (tier->kind()) {
      case sim::TierKind::kAppServer:
        demand.appMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kRemoteCache:
        demand.remoteMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kSqlFrontend:
        demand.sqlMicrosPerSec = perNodeMicrosPerSec;
        break;
      case sim::TierKind::kKvStorage:
        demand.kvMicrosPerSec = perNodeMicrosPerSec;
        break;
      default:
        break;
    }
  }
  return demand;
}

/// Tier the churn timeline runs against: wherever this architecture keeps
/// its cache state. Base has no cache tier; churning its app servers shows
/// the null story (routing around, no state to move).
[[nodiscard]] sim::TierKind churnTier(core::Architecture arch) {
  switch (arch) {
    case core::Architecture::kRemote: return sim::TierKind::kRemoteCache;
    case core::Architecture::kDisaggregated: return sim::TierKind::kFarMemory;
    default: return sim::TierKind::kAppServer;
  }
}

struct WindowRow {
  double p50Micros = 0.0;
  double p99Micros = 0.0;
  double hitRatio = 0.0;
  double storageAmp = 0.0;  // storage reads per read — the miss-storm metric
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t migratedKeys = 0;
  std::uint64_t migratedBytes = 0;
  std::uint64_t fallbackReads = 0;
  std::uint64_t epochFences = 0;
  util::Money cost;  // this window's bill at the monthly rate
};

struct CellResult {
  std::string architecture;
  Posture posture = Posture::kCold;
  std::vector<WindowRow> windows;
  obs::TraceSummary trace;  // final window only (clearMeters resets it)
};

CellResult runChurnCell(std::size_t index, std::uint64_t rootSeed,
                        const Fig12Options& options, const OpBudget& budget,
                        const std::vector<core::Architecture>& archs) {
  const core::Architecture arch = archs[index % archs.size()];
  const Posture posture = static_cast<Posture>(index / archs.size());
  const sim::TierKind tier = churnTier(arch);
  const TierDemand demand = calibrateDemand(arch, budget);

  core::DeploymentConfig config;
  config.architecture = arch;
  config.faultSeed = core::cellSeed(rootSeed, index);
  // Finite tier capacities (identical for both postures): a cold reshard's
  // miss storm has to queue at SQL/KV, which is what drags the tail.
  config.overload.appCapacityMicrosPerSec =
      demand.appMicrosPerSec * kHeadroomFactor;
  config.overload.remoteCacheCapacityMicrosPerSec =
      demand.remoteMicrosPerSec * kHeadroomFactor;
  config.overload.sqlCapacityMicrosPerSec =
      demand.sqlMicrosPerSec * kHeadroomFactor;
  config.overload.kvCapacityMicrosPerSec =
      demand.kvMicrosPerSec * kHeadroomFactor;
  // The churn tier carries one provisioned-but-absent spare (index 3) for
  // the scale-out step; the base fleet is nodes 0-2.
  switch (tier) {
    case sim::TierKind::kRemoteCache: config.remoteCacheNodes = 4; break;
    case sim::TierKind::kFarMemory: config.farMemoryNodes = 4; break;
    default: config.appServers = 4; break;
  }
  config = bench::withBenchTrace(config);
  core::Deployment deployment(config);

  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  const double microsPerOp = 1e6 / bench::kSyntheticQps;
  const std::uint64_t windowMicros =
      static_cast<std::uint64_t>(microsPerOp *
                                 static_cast<double>(budget.windowOps));
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(
        microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    deployment.serve(workload.next());
  };
  auto windowStartMicros = [&](std::size_t window) {
    return static_cast<std::uint64_t>(
        microsPerOp *
        static_cast<double>(budget.warmupOps + window * budget.windowOps));
  };

  // The churn timeline. The handoff window is a quarter of a bench window —
  // half the rolling-restart downtime, so a draining node is fully retired
  // before its replacement rejoins.
  core::MembershipSchedule schedule;
  schedule.startAbsent(tier, 3);
  schedule.rollingRestart(windowStartMicros(kRestartFrom), tier,
                          /*firstNode=*/0, /*count=*/2,
                          /*stepMicros=*/windowMicros,
                          /*downMicros=*/windowMicros / 2);
  schedule.join(windowStartMicros(kScaleOutWindow), tier, 3);
  schedule.leave(windowStartMicros(kDrainWindow), tier, 2);
  core::HandoffConfig handoff;
  handoff.enabled = posture == Posture::kWarm;
  handoff.windowMicros = windowMicros / 4;
  handoff.keysPerBatch = options.handoffKeysPerBatch;
  handoff.batchIntervalMicros = options.handoffBatchIntervalMicros;
  deployment.installMembershipSchedule(std::move(schedule), handoff);

  for (std::uint64_t i = 0; i < budget.warmupOps; ++i) serveOne();

  const core::ExperimentConfig experiment;  // pricing + utilization defaults
  const core::CostModel model(experiment.pricing,
                              experiment.targetUtilization);
  const double windowSeconds =
      static_cast<double>(budget.windowOps) / bench::kSyntheticQps;

  CellResult cell;
  cell.architecture = std::string(core::architectureName(arch));
  cell.posture = posture;
  for (std::size_t w = 0; w < kWindows; ++w) {
    deployment.clearMeters();
    for (std::uint64_t i = 0; i < budget.windowOps; ++i) serveOne();
    const core::ServeCounters& c = deployment.counters();
    WindowRow row;
    row.p50Micros = deployment.latencies().p50();
    row.p99Micros = deployment.latencies().p99();
    row.hitRatio = c.hitRatio();
    row.storageAmp = c.reads > 0 ? static_cast<double>(c.storageReads) /
                                       static_cast<double>(c.reads)
                                 : 0.0;
    row.joins = c.plannedJoins;
    row.leaves = c.plannedLeaves;
    row.migratedKeys = c.migratedKeys;
    row.migratedBytes = c.migratedBytes;
    row.fallbackReads = c.handoffFallbackReads;
    row.epochFences = c.epochFences;
    row.cost = model
                   .breakdown(deployment.tiers(), windowSeconds,
                              deployment.db().totalStoredBytes(),
                              config.replicationFactor)
                   .totalCost;
    cell.windows.push_back(row);
  }
  if (const obs::Tracer* tracer = deployment.tracer()) {
    cell.trace = tracer->summary();
  }
  return cell;
}

void printCell(const CellResult& cell, const OpBudget& budget) {
  util::TablePrinter table({"window", "phase", "p50_us", "p99_us",
                            "hit_ratio", "storage_amp", "joins", "leaves",
                            "migr_keys", "migr_kb", "fallback", "fences",
                            "window_cost"});
  for (std::size_t w = 0; w < cell.windows.size(); ++w) {
    const WindowRow& row = cell.windows[w];
    table.row(static_cast<unsigned long long>(w), kPhases[w], row.p50Micros,
              row.p99Micros, row.hitRatio, row.storageAmp,
              static_cast<unsigned long long>(row.joins),
              static_cast<unsigned long long>(row.leaves),
              static_cast<unsigned long long>(row.migratedKeys),
              static_cast<unsigned long long>(row.migratedBytes / 1024),
              static_cast<unsigned long long>(row.fallbackReads),
              static_cast<unsigned long long>(row.epochFences),
              row.cost.str());
  }
  char title[160];
  std::snprintf(
      title, sizeof title,
      "\nFigure 12 [%s, posture=%s]: membership-churn timeline (%lluK-op "
      "windows)",
      cell.architecture.c_str(),
      kPostureNames[static_cast<std::size_t>(cell.posture)],
      static_cast<unsigned long long>(budget.windowOps / 1000));
  table.print(title);
}

/// Steady-state reference: window 1 (window 0 still carries residual
/// warmup drift in some cells).
double steadyP99(const CellResult& cell) { return cell.windows[1].p99Micros; }

double worstChurnP99(const CellResult& cell) {
  double worst = 0.0;
  for (std::size_t w = kChurnFrom; w < kChurnUntil; ++w) {
    worst = std::max(worst, cell.windows[w].p99Micros);
  }
  return worst;
}

double worstChurnAmp(const CellResult& cell) {
  double worst = 0.0;
  for (std::size_t w = kChurnFrom; w < kChurnUntil; ++w) {
    worst = std::max(worst, cell.windows[w].storageAmp);
  }
  return worst;
}

std::uint64_t totalMigratedKeys(const CellResult& cell) {
  std::uint64_t total = 0;
  for (const WindowRow& row : cell.windows) total += row.migratedKeys;
  return total;
}

std::uint64_t totalMigratedBytes(const CellResult& cell) {
  std::uint64_t total = 0;
  for (const WindowRow& row : cell.windows) total += row.migratedBytes;
  return total;
}

std::uint64_t totalFallbacks(const CellResult& cell) {
  std::uint64_t total = 0;
  for (const WindowRow& row : cell.windows) total += row.fallbackReads;
  return total;
}

/// Churn premium in $/K-ops: how much the churn windows' bill exceeds the
/// same posture's steady-state bill, normalized per thousand served ops.
double churnPremiumPerKop(const CellResult& cell, const OpBudget& budget) {
  const double steadyMicros =
      static_cast<double>(cell.windows[1].cost.micros());
  double excessMicros = 0.0;
  for (std::size_t w = kChurnFrom; w < kChurnUntil; ++w) {
    excessMicros +=
        static_cast<double>(cell.windows[w].cost.micros()) - steadyMicros;
  }
  const double kops = static_cast<double>(budget.windowOps) *
                      static_cast<double>(kChurnUntil - kChurnFrom) / 1000.0;
  return kops > 0.0 ? excessMicros / 1e6 / kops : 0.0;
}

util::Money peakWindowCost(const CellResult& cell) {
  util::Money peak = cell.windows[0].cost;
  for (const WindowRow& row : cell.windows) {
    if (row.cost.micros() > peak.micros()) peak = row.cost;
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  const Fig12Options fig12 = parseFig12Options(argc, argv);
  const core::MatrixOptions& options = benchOptions.matrix;
  const OpBudget budget = opBudget();

  util::ThreadPool pool(options.jobs);
  const std::vector<core::Architecture> archs =
      bench::sweepArchitectures(kArchs);
  const std::size_t cellCount = kPostures * archs.size();
  const std::vector<CellResult> cells =
      util::mapOrdered(pool, cellCount,
                       [&options, &fig12, &budget, &archs](std::size_t i) {
                         return runChurnCell(i, options.rootSeed, fig12,
                                             budget, archs);
                       });
  pool.wait();

  for (const CellResult& cell : cells) printCell(cell, budget);

  // The churn verdict: how far the deploy train + scale events drag p99
  // and storage amplification off each posture's own steady state. The
  // acceptance story: cold, the rolling restart turns into a storage miss
  // storm; warm, migration + dual reads keep both near steady.
  util::TablePrinter verdict({"architecture", "p99_steady", "drag_cold",
                              "drag_warm", "amp_steady", "amp_cold",
                              "amp_warm", "migr_keys", "fallback"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& cold = cells[a];
    const CellResult& warm = cells[a + archs.size()];
    const auto drag = [](const CellResult& cell) {
      const double steady = steadyP99(cell);
      return steady > 0.0 ? worstChurnP99(cell) / steady : 0.0;
    };
    char dragCold[24], dragWarm[24];
    std::snprintf(dragCold, sizeof dragCold, "%.2fx", drag(cold));
    std::snprintf(dragWarm, sizeof dragWarm, "%.2fx", drag(warm));
    verdict.row(cold.architecture, steadyP99(cold), dragCold, dragWarm,
                cold.windows[1].storageAmp, worstChurnAmp(cold),
                worstChurnAmp(warm),
                static_cast<unsigned long long>(totalMigratedKeys(warm)),
                static_cast<unsigned long long>(totalFallbacks(warm)));
  }
  verdict.print(
      "\nFigure 12 verdict: churn-window p99 drag and storage amplification "
      "(reads hitting storage per read), cold reshard vs warm handoff");

  // The handoff bill: warm handoff pays migration CPU + wire bytes as a
  // small premium during churn; cold pays a storage miss storm whose peak
  // window is what an auto-scaler must overprovision for. Premiums are
  // $/K-ops over the same posture's steady bill; peaks are the worst
  // window's bill at the monthly rate.
  util::TablePrinter bill({"architecture", "migr_mb", "warm_usd_per_kop",
                           "cold_usd_per_kop", "peak_cold", "peak_warm"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CellResult& cold = cells[a];
    const CellResult& warm = cells[a + archs.size()];
    char migrMb[24], warmPrem[24], coldPrem[24];
    std::snprintf(migrMb, sizeof migrMb, "%.1f",
                  static_cast<double>(totalMigratedBytes(warm)) /
                      (1024.0 * 1024.0));
    std::snprintf(warmPrem, sizeof warmPrem, "%.6f",
                  churnPremiumPerKop(warm, budget));
    std::snprintf(coldPrem, sizeof coldPrem, "%.6f",
                  churnPremiumPerKop(cold, budget));
    bill.row(cold.architecture, migrMb, warmPrem, coldPrem,
             peakWindowCost(cold).str(), peakWindowCost(warm).str());
  }
  bill.print(
      "\nFigure 12 handoff bill: migration volume and the churn-window cost "
      "premium per posture ($/K-ops over own steady state)");

  if (benchOptions.trace.enabled()) {
    // clearMeters resets the tracer per window, so the summary covers the
    // final (recover) window.
    for (const CellResult& cell : cells) {
      core::ExperimentResult result;
      result.architecture =
          cell.architecture + "." +
          kPostureNames[static_cast<std::size_t>(cell.posture)];
      result.trace = cell.trace;
      std::printf("\n%s",
                  core::traceTreeReport(result,
                                        "trace fig12." + result.architecture +
                                            " (final window)",
                                        /*maxTraces=*/1)
                      .c_str());
    }
  }
  if (!benchOptions.metricsOut.empty()) {
    obs::MetricsRegistry registry;
    for (const CellResult& cell : cells) {
      const std::string prefix =
          "fig12." + cell.architecture + "." +
          kPostureNames[static_cast<std::size_t>(cell.posture)] + ".";
      for (std::size_t w = 0; w < cell.windows.size(); ++w) {
        const WindowRow& row = cell.windows[w];
        const std::string base = prefix + "window_" + std::to_string(w) + ".";
        registry.setGauge(base + "p50_us", row.p50Micros);
        registry.setGauge(base + "p99_us", row.p99Micros);
        registry.setGauge(base + "hit_ratio", row.hitRatio);
        registry.setGauge(base + "storage_amp", row.storageAmp);
        registry.setCounter(base + "planned_joins", row.joins);
        registry.setCounter(base + "planned_leaves", row.leaves);
        registry.setCounter(base + "migrated_keys", row.migratedKeys);
        registry.setCounter(base + "migrated_bytes", row.migratedBytes);
        registry.setCounter(base + "handoff_fallback_reads",
                            row.fallbackReads);
        registry.setCounter(base + "epoch_fences", row.epochFences);
        registry.setGauge(base + "window_cost_usd", row.cost.dollars());
      }
      registry.setCounter(prefix + "migrated_keys_total",
                          totalMigratedKeys(cell));
      registry.setCounter(prefix + "handoff_fallback_reads_total",
                          totalFallbacks(cell));
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
