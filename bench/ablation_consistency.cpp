// Ablation — the cost of consistency (§5.5, §6). Compares, on the same
// skewed read-heavy workload:
//   Base            — every read from storage (trivially consistent)
//   Linked          — eventually consistent cache (the cost ceiling)
//   Linked+Version  — per-read version check in storage (the §5.5 result:
//                     most of the cache's benefit evaporates)
//   Linked+Lease    — the §6 future-work design: Slicer-style ownership
//                     leases make owner reads consistent with only a local
//                     epoch check; the per-read storage round trip becomes
//                     an O(shards/lease-term) renewal stream.
//   Linked+TTL      — bounded staleness as the cheap eventual baseline.
// All five variants run as concurrent matrix cells; side counters (lease
// renewals) land in per-cell slots and print after the run.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "consistency/lease.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

constexpr std::uint64_t kOps = 150000;
constexpr std::uint64_t kWarmup = 150000;

workload::SyntheticConfig workloadConfig() {
  workload::SyntheticConfig config;
  config.valueSize = 16384;
  config.readRatio = 0.93;
  return config;
}

core::ExperimentConfig experimentConfig() {
  core::ExperimentConfig experiment;
  experiment.operations = kOps;
  experiment.warmupOperations = kWarmup;
  experiment.qps = bench::kSyntheticQps;
  return experiment;
}

/// Linked+Lease: Linked serving, plus a LeaseManager renewed on simulated
/// time; consistent reads are served locally while the lease is valid.
core::ExperimentResult runLinkedLease(std::uint64_t& renewalsOut) {
  workload::SyntheticWorkload workload(workloadConfig());
  core::DeploymentConfig deploymentConfig;
  deploymentConfig.architecture = core::Architecture::kLinked;
  deploymentConfig = bench::withBenchTrace(deploymentConfig);
  core::Deployment deployment(deploymentConfig);
  deployment.populateKv(workload);

  // The lease renewal RPC needs a channel over the deployment's network;
  // the deployment does not expose its channel, so renewals run over a
  // dedicated equivalent channel that charges the same nodes with the same
  // parameters. The channel is cell-local: cells must not share state.
  sim::NetworkModel network;
  rpc::Channel channel(network, rpc::SerializationModel{});

  // The lease authority is a storage node (it owns the write fence).
  consistency::LeaseManager leases(deployment.appTier(),
                                   deployment.db().kvTier().node(0), channel,
                                   consistency::LeaseConfig{});
  const double qps = bench::kSyntheticQps;
  auto simNow = [&](std::uint64_t op) {
    return static_cast<std::uint64_t>(1e6 * static_cast<double>(op) / qps);
  };

  auto serveOne = [&](std::uint64_t opIndex, const workload::Op& op) {
    const std::uint64_t now = simNow(opIndex);
    if (op.isRead() && deployment.linkedCache()) {
      const std::size_t owner =
          deployment.linkedCache()->ownerOf(workload::keyName(op.keyIndex));
      leases.renew(owner, now);
      leases.canServeLocally(owner, now);  // consistent-read epoch check
    }
    deployment.serve(op);
  };

  for (std::uint64_t i = 0; i < kWarmup; ++i) serveOne(i, workload.next());
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < kOps; ++i) serveOne(i, workload.next());

  const core::ExperimentConfig experiment = experimentConfig();
  const core::CostModel model(experiment.pricing,
                              experiment.targetUtilization);
  core::ExperimentResult result;
  result.architecture = "Linked+Lease";
  result.workload = workload.name();
  result.simulatedSeconds = static_cast<double>(kOps) / qps;
  result.cost = model.breakdown(deployment.tiers(), result.simulatedSeconds,
                                deployment.db().totalStoredBytes(),
                                deploymentConfig.replicationFactor);
  result.counters = deployment.counters();
  result.latencies = deployment.latencies();
  if (const obs::Tracer* tracer = deployment.tracer()) {
    result.trace = tracer->summary();
  }
  result.meanLatencyMicros = deployment.latencies().mean();
  result.p99LatencyMicros = deployment.latencies().p99();
  renewalsOut = leases.renewals();
  return result;
}

core::ExperimentResult runLinkedTtl(std::uint64_t ttlMicros) {
  // Bounded staleness: hits older than the TTL revalidate from storage.
  // Cheap next to per-read version checks, but reads within the window can
  // be stale — the related-work trade-off quantified.
  core::DeploymentConfig deployment;
  deployment.architecture = core::Architecture::kLinked;
  deployment.ttlFreshnessMicros = ttlMicros;
  auto result = bench::runCell(core::Architecture::kLinked,
                               workload::SyntheticWorkload(workloadConfig()),
                               deployment, experimentConfig());
  result.architecture = "Linked+TTL(1s)";
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kLinked,
        core::Architecture::kLinkedVersion}) {
    bench::addCell(matrix, arch, workload::SyntheticWorkload(workloadConfig()),
                   core::DeploymentConfig{}, experimentConfig());
  }
  std::uint64_t leaseRenewals = 0;
  matrix.add(
      [&leaseRenewals](util::Pcg32&) { return runLinkedLease(leaseRenewals); });
  matrix.add([](util::Pcg32&) { return runLinkedTtl(1000000); });

  const std::vector<core::ExperimentResult> results = matrix.run();

  std::printf("Linked+Lease: %llu lease renewals vs %llu reads (the "
              "version-check path would have done one storage round trip "
              "per read)\n\n",
              static_cast<unsigned long long>(leaseRenewals),
              static_cast<unsigned long long>(results[3].counters.reads));
  std::printf("Linked+TTL: %llu freshness expirations over %llu reads\n\n",
              static_cast<unsigned long long>(
                  results[4].counters.ttlExpirations),
              static_cast<unsigned long long>(results[4].counters.reads));

  std::fputs(core::costComparisonTable(
                 results,
                 "Consistency ablation (16KB values, r=0.93, 120K QPS): "
                 "version checks vs leases vs TTL bounds")
                 .c_str(),
             stdout);
  std::printf(
      "\nLinked+Version gives back %.0f%% of Linked's saving over Base; "
      "Linked+Lease retains %.0f%% of it.\n",
      100.0 * (results[2].cost.totalCost - results[1].cost.totalCost)
          .dollars() /
          (results[0].cost.totalCost - results[1].cost.totalCost).dollars(),
      100.0 * (results[0].cost.totalCost - results[3].cost.totalCost)
          .dollars() /
          (results[0].cost.totalCost - results[1].cost.totalCost).dollars());
  bench::finishBench(results);
  return 0;
}
