// Extension — beyond the paper's two workloads and its cost-only lens:
//   (a) a Twitter-style trace (median 230B, mixed read/write; Yang et al.
//       TOS'21, cited in §2.2) to check the cost conclusions generalize,
//   (b) the latency view the paper explicitly sets aside ("even without
//       considering their latency benefits"): mean and p99 request latency
//       per architecture, which favour caches even more strongly than cost,
//   (c) the trace-driven cache advisor applied to each workload: the
//       cost-optimal linked-cache size from the measured miss-ratio curve.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/advisor.hpp"
#include "util/table_printer.hpp"
#include "workload/meta_trace.hpp"
#include "workload/synthetic.hpp"
#include "workload/twitter_trace.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

void twitterPanel() {
  core::ExperimentConfig experiment;
  experiment.operations = 200000;
  experiment.warmupOperations = 400000;
  experiment.qps = bench::kSyntheticQps;

  std::vector<core::ExperimentResult> results;
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kRemote,
        core::Architecture::kLinked, core::Architecture::kLinkedVersion}) {
    results.push_back(bench::runCell(
        arch, workload::TwitterTraceWorkload(workload::TwitterTraceConfig{}),
        core::DeploymentConfig{}, experiment));
  }
  std::fputs(core::costComparisonTable(
                 results, "Extension: Twitter-style trace (230B median, "
                          "r=0.8, 120K QPS)")
                 .c_str(),
             stdout);
}

void latencyPanel() {
  core::ExperimentConfig experiment;
  experiment.operations = 120000;
  experiment.warmupOperations = 120000;
  experiment.qps = bench::kSyntheticQps;
  workload::SyntheticConfig workload;
  workload.valueSize = 16384;
  workload.readRatio = 0.93;

  util::TablePrinter table(
      {"architecture", "mean_us", "p99_us", "vs_Base_mean"});
  double baseMean = 0.0;
  for (const core::Architecture arch : core::kAllArchitectures) {
    const auto result =
        bench::runCell(arch, workload::SyntheticWorkload(workload),
                       core::DeploymentConfig{}, experiment);
    if (arch == core::Architecture::kBase) baseMean = result.meanLatencyMicros;
    char speedup[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  baseMean / result.meanLatencyMicros);
    table.addRow({result.architecture,
                  util::TablePrinter::toCell(result.meanLatencyMicros),
                  util::TablePrinter::toCell(result.p99LatencyMicros),
                  speedup});
  }
  table.print("\nExtension: the latency benefit the paper sets aside "
              "(16KB, r=0.93)");
}

void advisorPanel() {
  std::puts("\nExtension: trace-driven cache sizing (Mattson MRC + GCP "
            "prices)\n");
  core::AdvisorConfig config;
  config.sampleOps = 150000;
  config.qps = bench::kSyntheticQps;

  {
    workload::SyntheticWorkload workload(workload::SyntheticConfig{});
    std::printf("synthetic Zipf(1.2):\n%s\n",
                core::CacheAdvisor(config).advise(workload).summary().c_str());
  }
  {
    workload::MetaTraceWorkload workload(workload::MetaTraceConfig{});
    std::printf("meta trace:\n%s\n",
                core::CacheAdvisor(config).advise(workload).summary().c_str());
  }
  {
    core::AdvisorConfig ucConfig = config;
    ucConfig.qps = bench::kUcQps;
    workload::UcTraceWorkload workload(workload::UcTraceConfig{});
    std::printf("unity catalog:\n%s\n",
                core::CacheAdvisor(ucConfig).advise(workload).summary().c_str());
  }
}

}  // namespace

int main() {
  twitterPanel();
  latencyPanel();
  advisorPanel();
  return 0;
}
