// Extension — beyond the paper's two workloads and its cost-only lens:
//   (a) a Twitter-style trace (median 230B, mixed read/write; Yang et al.
//       TOS'21, cited in §2.2) to check the cost conclusions generalize,
//   (b) the latency view the paper explicitly sets aside ("even without
//       considering their latency benefits"): mean and p99 request latency
//       per architecture, which favour caches even more strongly than cost,
//   (c) the trace-driven cache advisor applied to each workload: the
//       cost-optimal linked-cache size from the measured miss-ratio curve.
// The experiment cells run on the matrix; the advisor analyses fan out on
// the same worker pool settings.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/advisor.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/meta_trace.hpp"
#include "workload/synthetic.hpp"
#include "workload/twitter_trace.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

void addTwitterCells(core::ExperimentMatrix& matrix,
                     const std::vector<core::Architecture>& archs) {
  core::ExperimentConfig experiment;
  experiment.operations = 200000;
  experiment.warmupOperations = 400000;
  experiment.qps = bench::kSyntheticQps;
  for (const core::Architecture arch : archs) {
    bench::addCell(matrix, arch,
                   workload::TwitterTraceWorkload(
                       workload::TwitterTraceConfig{}),
                   core::DeploymentConfig{}, experiment);
  }
}

void addLatencyCells(core::ExperimentMatrix& matrix,
                     const std::vector<core::Architecture>& archs) {
  core::ExperimentConfig experiment;
  experiment.operations = 120000;
  experiment.warmupOperations = 120000;
  experiment.qps = bench::kSyntheticQps;
  workload::SyntheticConfig workload;
  workload.valueSize = 16384;
  workload.readRatio = 0.93;
  for (const core::Architecture arch : archs) {
    bench::addCell(matrix, arch, workload::SyntheticWorkload(workload),
                   core::DeploymentConfig{}, experiment);
  }
}

void twitterPanel(const std::vector<core::ExperimentResult>& results,
                  std::size_t archCount) {
  const std::vector<core::ExperimentResult> panel(
      results.begin(),
      results.begin() + static_cast<std::ptrdiff_t>(archCount));
  std::fputs(core::costComparisonTable(
                 panel, "Extension: Twitter-style trace (230B median, "
                        "r=0.8, 120K QPS)")
                 .c_str(),
             stdout);
}

void latencyPanel(const std::vector<core::ExperimentResult>& results,
                  std::size_t archCount) {
  util::TablePrinter table(
      {"architecture", "mean_us", "p99_us", "vs_Base_mean"});
  const std::vector<core::ExperimentResult> panel(
      results.begin() + static_cast<std::ptrdiff_t>(archCount),
      results.begin() + static_cast<std::ptrdiff_t>(2 * archCount));
  const double baseMean = panel.front().meanLatencyMicros;
  for (const auto& result : panel) {
    char speedup[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  baseMean / result.meanLatencyMicros);
    table.addRow({result.architecture,
                  util::TablePrinter::toCell(result.meanLatencyMicros),
                  util::TablePrinter::toCell(result.p99LatencyMicros),
                  speedup});
  }
  table.print("\nExtension: the latency benefit the paper sets aside "
              "(16KB, r=0.93)");

  // Cross-cell aggregation via Histogram::merge: the latency distribution
  // of the whole panel as one population.
  const util::Histogram merged = core::mergedLatencies(panel);
  std::printf("\nAll-architecture merged latency distribution:\n%s",
              merged.summary("us").c_str());
}

void advisorPanel(std::size_t jobs) {
  std::puts("\nExtension: trace-driven cache sizing (Mattson MRC + GCP "
            "prices)\n");
  core::AdvisorConfig config;
  config.sampleOps = 150000;
  config.qps = bench::kSyntheticQps;

  util::ThreadPool pool(jobs);
  const auto summaries = util::mapOrdered(pool, 3, [&config](std::size_t i) {
    switch (i) {
      case 0: {
        workload::SyntheticWorkload workload(workload::SyntheticConfig{});
        return core::CacheAdvisor(config).advise(workload).summary();
      }
      case 1: {
        workload::MetaTraceWorkload workload(workload::MetaTraceConfig{});
        return core::CacheAdvisor(config).advise(workload).summary();
      }
      default: {
        core::AdvisorConfig ucConfig = config;
        ucConfig.qps = bench::kUcQps;
        workload::UcTraceWorkload workload(workload::UcTraceConfig{});
        return core::CacheAdvisor(ucConfig).advise(workload).summary();
      }
    }
  });
  std::printf("synthetic Zipf(1.2):\n%s\n", summaries[0].c_str());
  std::printf("meta trace:\n%s\n", summaries[1].c_str());
  std::printf("unity catalog:\n%s\n", summaries[2].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const core::MatrixOptions options =
      bench::parseBenchOptions(argc, argv).matrix;
  core::ExperimentMatrix matrix(options);
  const std::vector<core::Architecture> archs = bench::sweepArchitectures();
  addTwitterCells(matrix, archs);
  addLatencyCells(matrix, archs);
  const std::vector<core::ExperimentResult> results = matrix.run();
  twitterPanel(results, archs.size());
  latencyPanel(results, archs.size());
  advisorPanel(options.jobs);
  bench::finishBench(results);
  return 0;
}
