// Figure 8 — the delayed-writes problem (§6): a write delayed in flight
// races a cache reshard; the new owner warms itself from storage before
// the write lands, leaving cache and storage permanently out of sync.
// Prints the scripted interleaving's event log, then sweeps randomized
// timings to measure the anomaly rate with and without the epoch-fencing
// fix (writes carry their ownership epoch; storage rejects stale epochs).
// Each trial-count row is a matrix cell with its own root-derived seed;
// the fenced and unfenced sweeps inside a cell share that seed so their
// timings are identical and the rates stay directly comparable.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "consistency/delayed_write.hpp"
#include "core/matrix.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

using namespace dcache;

namespace {

constexpr std::uint64_t kTrialCounts[] = {100, 1000, 10000};

struct SweepRow {
  std::uint64_t trials = 0;
  double unfencedRate = 0.0;
  double fencedRate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions benchOptions =
      bench::parseBenchOptions(argc, argv);
  const core::MatrixOptions& options = benchOptions.matrix;
  util::ThreadPool pool(options.jobs);

  // Scripted interleavings (2 cells) and the randomized sweep rows run
  // concurrently; everything prints in submission order afterwards.
  consistency::DelayedWriteOutcome unfenced;
  consistency::DelayedWriteOutcome fenced;
  // dcache-lint: allow(race-capture, fork-join sole writer, joined below)
  pool.submit([&unfenced] {
    consistency::DelayedWriteConfig config;
    unfenced = consistency::runDelayedWriteScenario(config);
  });
  // dcache-lint: allow(race-capture, fork-join sole writer, joined below)
  pool.submit([&fenced] {
    consistency::DelayedWriteConfig config;
    config.epochFencing = true;
    fenced = consistency::runDelayedWriteScenario(config);
  });
  const auto rows = util::mapOrdered(
      pool, std::size(kTrialCounts), [&options](std::size_t i) {
        // Identical per-cell seed for both configurations: the fenced run
        // replays the unfenced run's timings exactly.
        const std::uint64_t seed = core::cellSeed(options.rootSeed, i);
        util::Pcg32 rngA(seed, 1);
        util::Pcg32 rngB(seed, 1);
        SweepRow row;
        row.trials = kTrialCounts[i];
        row.unfencedRate =
            consistency::delayedWriteAnomalyRate(row.trials, false, rngA);
        row.fencedRate =
            consistency::delayedWriteAnomalyRate(row.trials, true, rngB);
        return row;
      });
  pool.wait();

  std::puts("Figure 8: scripted delayed-write interleaving (no fencing)\n");
  std::fputs(unfenced.history.c_str(), stdout);
  std::puts("\nSame interleaving with epoch fencing:\n");
  std::fputs(fenced.history.c_str(), stdout);

  util::TablePrinter table({"trials", "anomaly_rate (no fencing)",
                            "anomaly_rate (epoch fencing)"});
  for (const SweepRow& row : rows) {
    table.addRow({util::TablePrinter::toCell(
                      static_cast<unsigned long long>(row.trials)),
                  util::TablePrinter::toCell(row.unfencedRate),
                  util::TablePrinter::toCell(row.fencedRate)});
  }
  table.print("\nRandomized-timing sweep (write delay, reshard and warm "
              "read drawn uniformly)");
  if (!benchOptions.metricsOut.empty()) {
    // Scenario bench: no deployments, so export the sweep's anomaly rates
    // directly.
    obs::MetricsRegistry registry;
    for (const SweepRow& row : rows) {
      const std::string base =
          "fig8.trials_" + std::to_string(row.trials) + ".";
      registry.setGauge(base + "anomaly_rate_unfenced", row.unfencedRate);
      registry.setGauge(base + "anomaly_rate_fenced", row.fencedRate);
    }
    if (!registry.writeJsonFile(benchOptions.metricsOut)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   benchOptions.metricsOut.c_str());
    }
  }
  if (!benchOptions.benchJsonOut.empty()) {
    bench::writeBenchJson(benchOptions, {});
  }
  return 0;
}
