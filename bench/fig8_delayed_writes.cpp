// Figure 8 — the delayed-writes problem (§6): a write delayed in flight
// races a cache reshard; the new owner warms itself from storage before
// the write lands, leaving cache and storage permanently out of sync.
// Prints the scripted interleaving's event log, then sweeps randomized
// timings to measure the anomaly rate with and without the epoch-fencing
// fix (writes carry their ownership epoch; storage rejects stale epochs).
#include <cstdio>

#include "consistency/delayed_write.hpp"
#include "util/table_printer.hpp"

using namespace dcache;

int main() {
  std::puts("Figure 8: scripted delayed-write interleaving (no fencing)\n");
  consistency::DelayedWriteConfig config;
  const auto outcome = consistency::runDelayedWriteScenario(config);
  std::fputs(outcome.history.c_str(), stdout);

  std::puts("\nSame interleaving with epoch fencing:\n");
  config.epochFencing = true;
  const auto fenced = consistency::runDelayedWriteScenario(config);
  std::fputs(fenced.history.c_str(), stdout);

  util::TablePrinter table({"trials", "anomaly_rate (no fencing)",
                            "anomaly_rate (epoch fencing)"});
  for (const std::uint64_t trials : {100ull, 1000ull, 10000ull}) {
    util::Pcg32 rngA(2026, 1);
    util::Pcg32 rngB(2026, 1);
    const double unfenced =
        consistency::delayedWriteAnomalyRate(trials, false, rngA);
    const double fencedRate =
        consistency::delayedWriteAnomalyRate(trials, true, rngB);
    table.addRow({util::TablePrinter::toCell(
                      static_cast<unsigned long long>(trials)),
                  util::TablePrinter::toCell(unfenced),
                  util::TablePrinter::toCell(fencedRate)});
  }
  table.print("\nRandomized-timing sweep (write delay, reshard and warm "
              "read drawn uniformly)");
  return 0;
}
