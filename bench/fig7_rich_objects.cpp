// Figure 7 — Unity Catalog-Object (§5.4): each read request expands into
// multiple SQL statements that assemble a rich object, exactly as the
// production service does. Compares the four architectures on the object
// workload and quantifies the two §5.4 claims:
//   * caching the materialized object saves up to ~8x vs reading from
//     storage (Base), and
//   * the savings exceed the Unity Catalog-KV (denormalized single-row)
//     variant's savings by up to ~2x — rich objects benefit
//     disproportionately because a hit also eliminates query amplification
//     and object assembly.
// The four object cells and two KV cells run concurrently on the matrix.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "richobject/catalog_store.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

workload::UcTraceConfig traceConfig() {
  workload::UcTraceConfig config;
  // Paper-shaped sizes/read ratio; the table count is scaled down so the
  // normalized catalog (14 real rows + indexes per table) stays in host
  // memory — the per-request work profile is unchanged.
  config.numTables = 20000;
  return config;
}

std::size_t addObjectCell(core::ExperimentMatrix& matrix,
                          core::Architecture arch) {
  return matrix.add([arch](util::Pcg32&) {
    const workload::UcTraceConfig config = traceConfig();
    workload::UcTraceWorkload workload(config);

    core::DeploymentConfig deployment;
    deployment.architecture = arch;
    deployment = bench::withBenchTrace(deployment);
    core::Deployment instance(deployment);
    instance.populateCatalog(workload);

    core::ExperimentConfig experiment;
    experiment.operations = 60000;
    // Long warmup: the catalog working set must be resident, as in the
    // production service; compulsory misses are not the phenomenon here.
    experiment.warmupOperations = 240000;
    experiment.qps = bench::kUcQps;
    experiment.richObjects = true;
    core::ExperimentRunner runner(experiment);
    return runner.run(instance, workload);
  });
}

std::size_t addKvCell(core::ExperimentMatrix& matrix,
                      core::Architecture arch) {
  const workload::UcTraceConfig config = traceConfig();
  core::ExperimentConfig experiment;
  experiment.operations = 60000;
  experiment.warmupOperations = 240000;
  experiment.qps = bench::kUcQps;
  return bench::addCell(matrix, arch, workload::UcTraceWorkload(config),
                        core::DeploymentConfig{}, experiment);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);
  const std::vector<core::Architecture> archs = bench::sweepArchitectures();
  for (const core::Architecture arch : archs) {
    addObjectCell(matrix, arch);
  }
  // UC-KV variant for the 2x comparison.
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kLinked}) {
    addKvCell(matrix, arch);
  }
  const std::vector<core::ExperimentResult> results = matrix.run();

  const std::vector<core::ExperimentResult> object(
      results.begin(),
      results.begin() + static_cast<std::ptrdiff_t>(archs.size()));
  std::fputs(core::costComparisonTable(
                 object, "Figure 7: Unity Catalog-Object — reads issue up "
                         "to 8 SQL statements (40K QPS)")
                 .c_str(),
             stdout);
  std::printf("statements per measured run (Base): %llu (amplification "
              "over %llu reads)\n\n",
              static_cast<unsigned long long>(
                  object.front().counters.statementsIssued),
              static_cast<unsigned long long>(object.front().counters.reads));

  const double objectSaving = core::savingsVs(object[0], object[2]);
  const double kvSaving =
      core::savingsVs(results[archs.size()], results[archs.size() + 1]);
  std::printf(
      "Linked-vs-Base saving, Unity Catalog-Object: %.2fx (paper: up to "
      "~8x)\n"
      "Linked-vs-Base saving, Unity Catalog-KV:     %.2fx\n"
      "Object advantage over KV variant:            %.2fx (paper: up to "
      "~2x)\n",
      objectSaving, kvSaving, objectSaving / kvSaving);
  bench::finishBench(results);
  return 0;
}
