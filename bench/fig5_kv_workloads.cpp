// Figure 5 — cost comparison on the key-value workloads (§5.3):
//   (a) Unity Catalog-KV: the UC trace served as single-row denormalized
//       lookups (23KB median objects, 93% reads, 40K QPS)
//   (b) Meta: CacheLib-style trace (~10B median values, 30% writes)
// Expected shape: significant savings for Remote and Linked over Base on
// both; Remote saves less than Linked (gRPC hop + (de)serialization);
// savings on (a) exceed (b) because larger objects amplify the
// serialization and byte-handling costs caches avoid.
// Both panels' cells run concurrently on the experiment matrix.
#include <vector>

#include "bench_common.hpp"
#include "workload/meta_trace.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

// Sweep roster: the kDisaggregated tail rides behind the --disagg gate
// (bench::sweepArchitectures strips it, restoring the original rows).
constexpr core::Architecture kArchs[] = {core::Architecture::kBase,
                                         core::Architecture::kRemote,
                                         core::Architecture::kLinked,
                                         core::Architecture::kDisaggregated};

template <typename WorkloadT>
void addPanel(core::ExperimentMatrix& matrix,
              const std::vector<core::Architecture>& archs,
              const WorkloadT& reference, double qps,
              std::uint64_t operations) {
  core::ExperimentConfig experiment;
  experiment.operations = operations;
  // Long warmup: production caches are warmed over hours; compulsory
  // misses must not dominate the measured window.
  experiment.warmupOperations = operations * 3;
  experiment.qps = qps;
  for (const core::Architecture arch : archs) {
    bench::addCell(matrix, arch, reference, core::DeploymentConfig{},
                   experiment);
  }
}

void printPanel(const std::vector<core::ExperimentResult>& results,
                std::size_t offset, std::size_t archCount,
                const char* title) {
  const std::vector<core::ExperimentResult> panel(
      results.begin() + static_cast<std::ptrdiff_t>(offset),
      results.begin() + static_cast<std::ptrdiff_t>(offset + archCount));
  std::fputs(core::costComparisonTable(panel, title).c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);
  const std::vector<core::Architecture> archs =
      bench::sweepArchitectures(kArchs);

  workload::UcTraceConfig ucConfig;  // paper shape: 23KB median, 93% reads
  addPanel(matrix, archs, workload::UcTraceWorkload(ucConfig), bench::kUcQps,
           200000);
  workload::MetaTraceConfig metaConfig;  // ~10B median, 30% writes
  addPanel(matrix, archs, workload::MetaTraceWorkload(metaConfig),
           bench::kSyntheticQps, 300000);

  const std::vector<core::ExperimentResult> results = matrix.run();
  printPanel(results, 0, archs.size(),
             "Figure 5a: Unity Catalog-KV (denormalized single-row reads, "
             "40K QPS)");
  printPanel(results, archs.size(), archs.size(),
             "Figure 5b: Meta key-value trace (10B median values, 30% "
             "writes, 120K QPS)");
  bench::finishBench(results);
  return 0;
}
