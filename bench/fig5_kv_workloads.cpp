// Figure 5 — cost comparison on the key-value workloads (§5.3):
//   (a) Unity Catalog-KV: the UC trace served as single-row denormalized
//       lookups (23KB median objects, 93% reads, 40K QPS)
//   (b) Meta: CacheLib-style trace (~10B median values, 30% writes)
// Expected shape: significant savings for Remote and Linked over Base on
// both; Remote saves less than Linked (gRPC hop + (de)serialization);
// savings on (a) exceed (b) because larger objects amplify the
// serialization and byte-handling costs caches avoid.
#include <vector>

#include "bench_common.hpp"
#include "workload/meta_trace.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

template <typename WorkloadT>
void runPanel(const WorkloadT& reference, const char* title, double qps,
              std::uint64_t operations) {
  core::ExperimentConfig experiment;
  experiment.operations = operations;
  // Long warmup: production caches are warmed over hours; compulsory
  // misses must not dominate the measured window.
  experiment.warmupOperations = operations * 3;
  experiment.qps = qps;

  std::vector<core::ExperimentResult> results;
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kRemote,
        core::Architecture::kLinked}) {
    results.push_back(bench::runCell(arch, reference,
                                     core::DeploymentConfig{}, experiment));
  }
  std::fputs(core::costComparisonTable(results, title).c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace

int main() {
  workload::UcTraceConfig ucConfig;  // paper shape: 23KB median, 93% reads
  runPanel(workload::UcTraceWorkload(ucConfig),
           "Figure 5a: Unity Catalog-KV (denormalized single-row reads, "
           "40K QPS)",
           bench::kUcQps, 200000);

  workload::MetaTraceConfig metaConfig;  // ~10B median, 30% writes
  runPanel(workload::MetaTraceWorkload(metaConfig),
           "Figure 5b: Meta key-value trace (10B median values, 30% "
           "writes, 120K QPS)",
           bench::kSyntheticQps, 300000);
  return 0;
}
