// Figure 6 — CPU usage breakdown at app server, remote cache and storage
// across value sizes, one panel per architecture (§5.3, §5.5):
//   (a) Base  (b) Remote  (c) Linked  (d) Linked+Version
// Reported per panel: relative CPU share per tier, the database-cycle
// decomposition (the paper: 40-65% of DB cycles on connection/query
// processing/planning), the Linked app-server decomposition (~60% request
// prep, ~31% client communication) and the memory share of total cost
// (6-22% for Linked, 1-5% for Base).
// All (architecture, value-size) points are experiment-matrix cells; the
// Linked@16KB point is computed once and shared by the panel, the app
// decomposition and the full breakdown table.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table_printer.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

constexpr std::uint64_t kValueSizes[] = {1024, 16384, 262144, 1048576};

std::size_t addPoint(core::ExperimentMatrix& matrix, core::Architecture arch,
                     std::uint64_t valueSize, double readRatio = 0.93) {
  workload::SyntheticConfig workload;
  workload.readRatio = readRatio;
  workload.valueSize = valueSize;
  core::ExperimentConfig experiment;
  experiment.operations = 150000;
  experiment.warmupOperations = 150000;
  experiment.qps = bench::kSyntheticQps;
  return bench::addCell(matrix, arch, workload::SyntheticWorkload(workload),
                        core::DeploymentConfig{}, experiment);
}

void tierShares(core::Architecture arch,
                const std::vector<core::ExperimentResult>& results,
                std::size_t offset, bool includeFarColumn) {
  // The far-memory column only exists while the --disagg gate is open, so
  // the gate-closed table stays byte-identical to the four-arch original.
  std::vector<std::string> headers{"value_size", "app%", "remote_cache%"};
  if (includeFarColumn) headers.emplace_back("far_mem%");
  for (const char* h : {"sql%", "kv%", "db_query_proc%", "mem_share%"}) {
    headers.emplace_back(h);
  }
  util::TablePrinter table(std::move(headers));
  std::size_t cell = offset;
  for (const std::uint64_t valueSize : kValueSizes) {
    const auto& result = results[cell++];
    double total = 0.0;
    double app = 0.0;
    double remote = 0.0;
    double farMem = 0.0;
    double sql = 0.0;
    double kv = 0.0;
    for (const core::TierUsage& tier : result.cost.tiers) {
      total += tier.cpuMicrosTotal;
      switch (tier.kind) {
        case sim::TierKind::kAppServer: app += tier.cpuMicrosTotal; break;
        case sim::TierKind::kRemoteCache: remote += tier.cpuMicrosTotal; break;
        case sim::TierKind::kFarMemory: farMem += tier.cpuMicrosTotal; break;
        case sim::TierKind::kSqlFrontend: sql += tier.cpuMicrosTotal; break;
        case sim::TierKind::kKvStorage: kv += tier.cpuMicrosTotal; break;
        default: break;
      }
    }
    auto pct = [&](double x) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", total > 0 ? 100.0 * x / total : 0);
      return std::string(buf);
    };
    char queryProc[16];
    std::snprintf(queryProc, sizeof queryProc, "%.1f",
                  100.0 * core::queryProcessingShare(result));
    char memShare[16];
    std::snprintf(memShare, sizeof memShare, "%.1f",
                  100.0 * core::memoryCostShare(result));
    std::vector<std::string> row{util::Bytes::of(valueSize).str(), pct(app),
                                 pct(remote)};
    if (includeFarColumn) row.push_back(pct(farMem));
    row.push_back(pct(sql));
    row.push_back(pct(kv));
    row.emplace_back(queryProc);
    row.emplace_back(memShare);
    table.addRow(std::move(row));
  }
  table.print(std::string("\nFigure 6 — ") +
              std::string(core::architectureName(arch)) +
              ": CPU share per tier vs value size");
}

void linkedAppDecomposition(const core::ExperimentResult& result,
                            std::uint64_t valueSize, double readRatio) {
  // §5.3: for Linked, preparing/issuing storage requests ≈60% of app
  // cycles, client communication ≈31%, the rest servicing requests. The
  // prep share is dominated by the ops that reach storage, so it peaks in
  // the write-heavy runs and shrinks as the hit ratio rises.
  const core::TierUsage* app = result.cost.tier(sim::TierKind::kAppServer);
  if (!app) return;
  auto share = [&](sim::CpuComponent c) {
    return 100.0 * app->cpuMicrosByComponent[static_cast<std::size_t>(c)] /
           app->cpuMicrosTotal;
  };
  // "Request prep" in the paper's sense covers preparing and issuing the
  // storage/cache requests: prep + the marshalling/framing of those hops.
  const double prep = share(sim::CpuComponent::kRequestPrep) +
                      share(sim::CpuComponent::kRpcFraming) +
                      share(sim::CpuComponent::kSerialization) +
                      share(sim::CpuComponent::kDeserialization);
  const double clientComm = share(sim::CpuComponent::kClientComm);
  const double serving = share(sim::CpuComponent::kCacheOp) +
                         share(sim::CpuComponent::kAppLogic);
  std::printf(
      "\nLinked app-server cycle decomposition at %s, r=%.2f (paper: "
      "~60%% request prep, ~31%% client comm):\n"
      "  storage/cache request prep+marshalling: %.1f%%\n"
      "  client communication:                   %.1f%%\n"
      "  request servicing (cache ops, logic):   %.1f%%\n",
      util::Bytes::of(valueSize).str().c_str(), readRatio, prep, clientComm,
      serving);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentMatrix matrix(bench::parseBenchOptions(argc, argv).matrix);

  // One cell per (architecture, value size); panel rows index into this
  // block, and the Linked/Linked+Version @16KB cells double as the
  // decomposition and full-breakdown inputs.
  const std::vector<core::Architecture> archs = bench::sweepArchitectures();
  std::vector<std::size_t> panelOffsets;
  std::size_t linked16k = 0;
  std::size_t linkedVersion16k = 0;
  for (const core::Architecture arch : archs) {
    panelOffsets.push_back(matrix.cellCount());
    for (const std::uint64_t valueSize : kValueSizes) {
      const std::size_t cell = addPoint(matrix, arch, valueSize);
      if (valueSize == 16384) {
        if (arch == core::Architecture::kLinked) linked16k = cell;
        if (arch == core::Architecture::kLinkedVersion) {
          linkedVersion16k = cell;
        }
      }
    }
  }
  const std::size_t linkedWriteHeavy =
      addPoint(matrix, core::Architecture::kLinked, 16384, 0.50);

  const std::vector<core::ExperimentResult> results = matrix.run();

  for (std::size_t i = 0; i < archs.size(); ++i) {
    tierShares(archs[i], results, panelOffsets[i],
               bench::benchOptions().disagg);
  }
  linkedAppDecomposition(results[linked16k], 16384, 0.93);
  linkedAppDecomposition(results[linkedWriteHeavy], 16384, 0.50);

  // Full component table for one representative panel each of Linked and
  // Linked+Version, making the §5.5 storage-load increase visible.
  std::fputs(core::cpuBreakdownTable(results[linked16k],
                                     "\nLinked @16KB — full CPU breakdown")
                 .c_str(),
             stdout);
  std::fputs(core::cpuBreakdownTable(
                 results[linkedVersion16k],
                 "\nLinked+Version @16KB — full CPU breakdown "
                 "(note the storage tier growth, §5.5)")
                 .c_str(),
             stdout);
  bench::finishBench(results);
  return 0;
}
