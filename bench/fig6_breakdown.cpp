// Figure 6 — CPU usage breakdown at app server, remote cache and storage
// across value sizes, one panel per architecture (§5.3, §5.5):
//   (a) Base  (b) Remote  (c) Linked  (d) Linked+Version
// Reported per panel: relative CPU share per tier, the database-cycle
// decomposition (the paper: 40-65% of DB cycles on connection/query
// processing/planning), the Linked app-server decomposition (~60% request
// prep, ~31% client communication) and the memory share of total cost
// (6-22% for Linked, 1-5% for Base).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table_printer.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

core::ExperimentResult runPoint(core::Architecture arch,
                                std::uint64_t valueSize,
                                double readRatio = 0.93) {
  workload::SyntheticConfig workload;
  workload.readRatio = readRatio;
  workload.valueSize = valueSize;
  core::ExperimentConfig experiment;
  experiment.operations = 150000;
  experiment.warmupOperations = 150000;
  experiment.qps = bench::kSyntheticQps;
  return bench::runCell(arch, workload::SyntheticWorkload(workload),
                        core::DeploymentConfig{}, experiment);
}

void tierShares(core::Architecture arch) {
  util::TablePrinter table({"value_size", "app%", "remote_cache%", "sql%",
                            "kv%", "db_query_proc%", "mem_share%"});
  for (const std::uint64_t valueSize :
       {1024ull, 16384ull, 262144ull, 1048576ull}) {
    const auto result = runPoint(arch, valueSize);
    double total = 0.0;
    double app = 0.0;
    double remote = 0.0;
    double sql = 0.0;
    double kv = 0.0;
    for (const core::TierUsage& tier : result.cost.tiers) {
      total += tier.cpuMicrosTotal;
      switch (tier.kind) {
        case sim::TierKind::kAppServer: app += tier.cpuMicrosTotal; break;
        case sim::TierKind::kRemoteCache: remote += tier.cpuMicrosTotal; break;
        case sim::TierKind::kSqlFrontend: sql += tier.cpuMicrosTotal; break;
        case sim::TierKind::kKvStorage: kv += tier.cpuMicrosTotal; break;
        default: break;
      }
    }
    auto pct = [&](double x) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", total > 0 ? 100.0 * x / total : 0);
      return std::string(buf);
    };
    char queryProc[16];
    std::snprintf(queryProc, sizeof queryProc, "%.1f",
                  100.0 * core::queryProcessingShare(result));
    char memShare[16];
    std::snprintf(memShare, sizeof memShare, "%.1f",
                  100.0 * core::memoryCostShare(result));
    table.addRow({util::Bytes::of(valueSize).str(), pct(app), pct(remote),
                  pct(sql), pct(kv), queryProc, memShare});
  }
  table.print(std::string("\nFigure 6 — ") +
              std::string(core::architectureName(arch)) +
              ": CPU share per tier vs value size");
}

void linkedAppDecomposition(std::uint64_t valueSize, double readRatio) {
  // §5.3: for Linked, preparing/issuing storage requests ≈60% of app
  // cycles, client communication ≈31%, the rest servicing requests. The
  // prep share is dominated by the ops that reach storage, so it peaks in
  // the write-heavy runs and shrinks as the hit ratio rises.
  const auto result =
      runPoint(core::Architecture::kLinked, valueSize, readRatio);
  const core::TierUsage* app = result.cost.tier(sim::TierKind::kAppServer);
  if (!app) return;
  auto share = [&](sim::CpuComponent c) {
    return 100.0 * app->cpuMicrosByComponent[static_cast<std::size_t>(c)] /
           app->cpuMicrosTotal;
  };
  // "Request prep" in the paper's sense covers preparing and issuing the
  // storage/cache requests: prep + the marshalling/framing of those hops.
  const double prep = share(sim::CpuComponent::kRequestPrep) +
                      share(sim::CpuComponent::kRpcFraming) +
                      share(sim::CpuComponent::kSerialization) +
                      share(sim::CpuComponent::kDeserialization);
  const double clientComm = share(sim::CpuComponent::kClientComm);
  const double serving = share(sim::CpuComponent::kCacheOp) +
                         share(sim::CpuComponent::kAppLogic);
  std::printf(
      "\nLinked app-server cycle decomposition at %s, r=%.2f (paper: "
      "~60%% request prep, ~31%% client comm):\n"
      "  storage/cache request prep+marshalling: %.1f%%\n"
      "  client communication:                   %.1f%%\n"
      "  request servicing (cache ops, logic):   %.1f%%\n",
      util::Bytes::of(valueSize).str().c_str(), readRatio, prep, clientComm,
      serving);
}

}  // namespace

int main() {
  for (const core::Architecture arch : core::kAllArchitectures) {
    tierShares(arch);
  }
  linkedAppDecomposition(16384, 0.93);
  linkedAppDecomposition(16384, 0.50);

  // Full component table for one representative panel each of Linked and
  // Linked+Version, making the §5.5 storage-load increase visible.
  const auto linked = runPoint(core::Architecture::kLinked, 16384);
  const auto linkedV = runPoint(core::Architecture::kLinkedVersion, 16384);
  std::fputs(
      core::cpuBreakdownTable(linked, "\nLinked @16KB — full CPU breakdown")
          .c_str(),
      stdout);
  std::fputs(core::cpuBreakdownTable(
                 linkedV, "\nLinked+Version @16KB — full CPU breakdown "
                          "(note the storage tier growth, §5.5)")
                 .c_str(),
             stdout);
  return 0;
}
